"""The parallel engine: shard planning, executors, merges, and the
serial-vs-parallel parity contract.

The parity tests assert *bit-identical* output — not just equal counts
but equal counter key order and equal sample lists — because downstream
seeded consumers depend on first-appearance iteration order.  The whole
module runs under both storage backends via the session ``storage_backend``
fixture.
"""

from __future__ import annotations

import math
import os
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.counting import (
    count_event_pairs,
    count_motifs,
    run_census,
    total_instances,
)
from repro.algorithms.enumeration import enumerate_instances
from repro.algorithms.restrictions import (
    combine,
    is_static_induced,
    satisfies_cdg,
    satisfies_consecutive_events,
)
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.generators import ActivityConfig, generate
from repro.parallel import (
    ENV_JOBS,
    ParallelExecutor,
    SerialExecutor,
    Shard,
    default_jobs,
    get_executor,
    is_shard_safe,
    mark_shard_safe,
    merge_censuses,
    merge_counts,
    merge_instances,
    parallel_map,
    plan_root_shards,
    plan_shards,
    resolve_jobs,
    shard_graph,
)

CONSTRAINTS = TimingConstraints(delta_c=40.0, delta_w=90.0)


def _square(x: int) -> int:
    return x * x


def _raise_attribute_error(x):
    raise AttributeError("worker boom")


def _few_nodes(graph: TemporalGraph, instance) -> bool:
    """A deliberately unmarked predicate (forces the root-shard fallback)."""
    nodes = set()
    for i in instance:
        ev = graph.events[i]
        nodes.update(ev.nodes)
    return len(nodes) == 3


@pytest.fixture(scope="module")
def medium_graph(storage_backend: str) -> TemporalGraph:
    """~2k events of bursty synthetic activity, enough to span many shards."""
    pytest.importorskip("numpy", reason="graph synthesis is numpy-seeded")
    config = ActivityConfig(
        n_nodes=120,
        n_events=2_000,
        timespan=20_000.0,
        p_reply=0.3,
        p_repeat=0.2,
        p_cc=0.1,
        p_forward=0.1,
    )
    return generate(config, seed=7)


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
class TestPlanShards:
    def test_anchors_partition_the_stream(self, medium_graph):
        shards = plan_shards(medium_graph, 90.0, 4)
        assert shards[0].root_lo == 0
        assert shards[-1].root_hi == len(medium_graph)
        for a, b in zip(shards, shards[1:]):
            assert a.root_hi == b.root_lo

    def test_windows_cover_owned_roots(self, medium_graph):
        delta = CONSTRAINTS.loose_timespan_bound(3)
        times = medium_graph.times
        for shard in plan_shards(medium_graph, delta, 5):
            assert shard.ev_lo <= shard.root_lo
            assert shard.ev_hi >= shard.root_hi
            # every event inside [t_root, t_root + delta] of any owned root
            # must lie inside the shard's event range
            t_last_root = times[shard.root_hi - 1]
            for idx in range(shard.root_lo, len(medium_graph)):
                if times[idx] > t_last_root + delta:
                    break
                assert shard.ev_lo <= idx < shard.ev_hi
            # backward extension: same-timestamp events of the first root
            if shard.root_lo > 0 and times[shard.root_lo - 1] == times[shard.root_lo]:
                assert shard.ev_lo < shard.root_lo

    def test_more_shards_than_events(self):
        graph = TemporalGraph.from_tuples([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        shards = plan_shards(graph, 10.0, 16)
        assert len(shards) == 3
        assert [s.n_roots for s in shards] == [1, 1, 1]

    def test_empty_graph(self):
        graph = TemporalGraph([])
        assert plan_shards(graph, 5.0, 4) == [Shard(0, 0, 0, 0, 0)]
        assert plan_root_shards(graph, 4) == [Shard(0, 0, 0, 0, 0)]

    def test_infinite_delta_degrades_to_one_shard(self, medium_graph):
        shards = plan_shards(medium_graph, math.inf, 4)
        assert len(shards) == 1
        assert shards[0].n_events == len(medium_graph)

    def test_negative_delta_rejected(self, medium_graph):
        with pytest.raises(ValueError):
            plan_shards(medium_graph, -1.0, 2)

    def test_root_shards_see_everything(self, medium_graph):
        shards = plan_root_shards(medium_graph, 3)
        assert all(s.ev_lo == 0 and s.ev_hi == len(medium_graph) for s in shards)
        assert sum(s.n_roots for s in shards) == len(medium_graph)

    def test_shard_graph_preserves_backend_and_indices(self, medium_graph):
        shard = plan_shards(medium_graph, 90.0, 4)[1]
        sub = shard_graph(medium_graph, shard)
        assert sub.backend == medium_graph.backend
        assert len(sub) == shard.n_events
        assert sub.events[0] == medium_graph.events[shard.ev_lo]
        assert shard.to_global((0, 1)) == (shard.ev_lo, shard.ev_lo + 1)


# ----------------------------------------------------------------------
# executors and job resolution
# ----------------------------------------------------------------------
class TestExecutor:
    def test_explicit_jobs_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "7")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(None) == 7

    def test_env_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs(None) == 1

    def test_invalid_env_warns_and_runs_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "many")
        with pytest.warns(RuntimeWarning):
            assert resolve_jobs(None) == 1

    def test_nonpositive_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_default_jobs_context(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs(None) == 1
        with default_jobs(5):
            assert resolve_jobs(None) == 5
            assert resolve_jobs(2) == 2
        assert resolve_jobs(None) == 1

    def test_get_executor_kinds(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(3), ParallelExecutor)

    def test_pool_map_preserves_order(self):
        assert ParallelExecutor(2).map(_square, range(9)) == [x * x for x in range(9)]

    def test_unpicklable_payload_falls_back_to_serial(self):
        with pytest.warns(RuntimeWarning):
            result = ParallelExecutor(2).map(lambda x: x + 1, [1, 2, 3])
        assert result == [2, 3, 4]

    def test_worker_errors_propagate_without_serial_rerun(self):
        with pytest.raises(AttributeError, match="worker boom"):
            ParallelExecutor(2).map(_raise_attribute_error, [1, 2])

    def test_parallel_map_matches_serial(self):
        assert parallel_map(_square, range(5), jobs=2) == [0, 1, 4, 9, 16]

    def test_explicit_serial_ignores_session_default(self, monkeypatch):
        """jobs=1 must stay serial even with a session default installed."""

        def boom(self, fn, items):
            raise AssertionError("pool used despite jobs=1")

        monkeypatch.setattr(ParallelExecutor, "map", boom)
        graph = TemporalGraph.from_tuples([(0, 1, 10.0), (1, 2, 20.0), (0, 2, 25.0)])
        with default_jobs(4):
            counts = count_motifs(graph, 3, CONSTRAINTS, max_nodes=3, jobs=1)
        assert sum(counts.values()) == 1

    def test_enumerate_stays_lazy_under_session_default(self, monkeypatch):
        """The generator never auto-parallelizes; opt-in is explicit."""

        def boom(self, fn, items):
            raise AssertionError("enumerate_instances materialized via a pool")

        monkeypatch.setattr(ParallelExecutor, "map", boom)
        graph = TemporalGraph.from_tuples([(0, 1, 10.0), (1, 2, 20.0), (0, 2, 25.0)])
        with default_jobs(4):
            first = next(enumerate_instances(graph, 3, CONSTRAINTS), None)
        assert first == (0, 1, 2)


# ----------------------------------------------------------------------
# merges
# ----------------------------------------------------------------------
class TestMerge:
    def test_merge_counts_preserves_first_appearance_order(self):
        merged = merge_counts(
            [Counter({"b": 1, "a": 2}), Counter({"c": 4, "a": 1})],
        )
        assert merged == Counter({"a": 3, "b": 1, "c": 4})
        assert list(merged) == ["b", "a", "c"]

    def test_merge_instances_dedups_by_anchor_ownership(self):
        shards = [Shard(0, 0, 2, 0, 4), Shard(1, 2, 4, 1, 4)]
        # shard 1 redundantly re-found an instance anchored in shard 0
        lists = [[(0, 1), (1, 3)], [(1, 3), (2, 3), (3,)]]
        assert merge_instances(shards, lists) == [(0, 1), (1, 3), (2, 3), (3,)]

    def test_merge_instances_length_mismatch(self):
        with pytest.raises(ValueError):
            merge_instances([Shard(0, 0, 1, 0, 1)], [])

    def test_merge_censuses_requires_input(self):
        with pytest.raises(ValueError):
            merge_censuses([])


# ----------------------------------------------------------------------
# parity: the acceptance bar of the engine
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_census_bit_identical(self, medium_graph, jobs):
        serial = run_census(
            medium_graph,
            3,
            CONSTRAINTS,
            max_nodes=3,
            collect_timespans=True,
            collect_positions=True,
        )
        parallel = run_census(
            medium_graph,
            3,
            CONSTRAINTS,
            max_nodes=3,
            collect_timespans=True,
            collect_positions=True,
            jobs=jobs,
        )
        assert parallel.total == serial.total
        assert parallel.code_counts == serial.code_counts
        assert list(parallel.code_counts) == list(serial.code_counts)
        assert parallel.pair_counts == serial.pair_counts
        assert parallel.pair_sequence_counts == serial.pair_sequence_counts
        assert list(parallel.pair_sequence_counts) == list(serial.pair_sequence_counts)
        assert parallel.timespans == serial.timespans
        assert parallel.intermediate_positions == serial.intermediate_positions

    def test_census_sample_caps(self, medium_graph):
        kwargs = dict(
            max_nodes=3,
            collect_timespans=True,
            collect_positions=True,
            sample_cap=7,
        )
        serial = run_census(medium_graph, 3, CONSTRAINTS, **kwargs)
        parallel = run_census(medium_graph, 3, CONSTRAINTS, jobs=3, **kwargs)
        assert parallel.timespans == serial.timespans
        assert parallel.intermediate_positions == serial.intermediate_positions
        assert all(len(v) <= 7 for v in parallel.timespans.values())

    def test_count_motifs_with_node_filter(self, medium_graph):
        serial = count_motifs(medium_graph, 3, CONSTRAINTS, max_nodes=3, node_counts={3})
        parallel = count_motifs(
            medium_graph,
            3,
            CONSTRAINTS,
            max_nodes=3,
            node_counts={3},
            jobs=4,
        )
        assert parallel == serial
        assert list(parallel) == list(serial)

    def test_count_event_pairs(self, medium_graph):
        serial = count_event_pairs(medium_graph, 3, CONSTRAINTS, max_nodes=3)
        parallel = count_event_pairs(medium_graph, 3, CONSTRAINTS, max_nodes=3, jobs=2)
        assert parallel == serial

    def test_total_instances(self, medium_graph):
        serial = total_instances(medium_graph, 3, CONSTRAINTS)
        assert total_instances(medium_graph, 3, CONSTRAINTS, jobs=3) == serial

    def test_enumerate_yields_serial_order(self, medium_graph):
        serial = list(enumerate_instances(medium_graph, 3, CONSTRAINTS))
        parallel = list(enumerate_instances(medium_graph, 3, CONSTRAINTS, jobs=3))
        assert parallel == serial

    @pytest.mark.parametrize(
        "predicate",
        [satisfies_consecutive_events, satisfies_cdg],
        ids=["consecutive", "cdg"],
    )
    def test_shard_safe_predicates(self, medium_graph, predicate):
        assert is_shard_safe(predicate)
        serial = count_motifs(medium_graph, 3, CONSTRAINTS, max_nodes=3, predicate=predicate)
        parallel = count_motifs(
            medium_graph,
            3,
            CONSTRAINTS,
            max_nodes=3,
            predicate=predicate,
            jobs=4,
        )
        assert parallel == serial

    def test_global_predicate_routes_to_root_shards(self, medium_graph):
        assert not is_shard_safe(is_static_induced)
        serial = count_motifs(
            medium_graph,
            3,
            CONSTRAINTS,
            max_nodes=3,
            predicate=is_static_induced,
        )
        parallel = count_motifs(
            medium_graph,
            3,
            CONSTRAINTS,
            max_nodes=3,
            predicate=is_static_induced,
            jobs=4,
        )
        assert parallel == serial

    def test_unmarked_predicate_still_correct(self, medium_graph):
        serial = count_motifs(medium_graph, 3, CONSTRAINTS, max_nodes=3, predicate=_few_nodes)
        parallel = count_motifs(
            medium_graph,
            3,
            CONSTRAINTS,
            max_nodes=3,
            predicate=_few_nodes,
            jobs=3,
        )
        assert parallel == serial

    def test_four_event_motifs(self, medium_graph):
        serial = count_motifs(medium_graph, 4, CONSTRAINTS, max_nodes=4)
        parallel = count_motifs(medium_graph, 4, CONSTRAINTS, max_nodes=4, jobs=2)
        assert parallel == serial

    def test_empty_graph(self):
        graph = TemporalGraph([])
        assert count_motifs(graph, 3, CONSTRAINTS, jobs=4) == Counter()
        assert total_instances(graph, 3, CONSTRAINTS, jobs=4) == 0


# ----------------------------------------------------------------------
# shard-safety protocol
# ----------------------------------------------------------------------
class TestShardSafety:
    def test_none_predicate_is_safe(self):
        assert is_shard_safe(None)

    def test_mark_shard_safe(self):
        def pred(graph, instance):
            return True

        assert not is_shard_safe(pred)
        assert is_shard_safe(mark_shard_safe(pred))

    def test_combine_propagates_safety(self):
        safe = combine(satisfies_consecutive_events, satisfies_cdg)
        assert is_shard_safe(safe)
        mixed = combine(satisfies_consecutive_events, is_static_induced)
        assert not is_shard_safe(mixed)


# ----------------------------------------------------------------------
# shard-boundary correctness (property test, in-process)
# ----------------------------------------------------------------------
triples = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=50),
    ),
    max_size=40,
).map(lambda raw: [(u, v, float(t)) for (u, v, t) in raw if u != v])


@given(
    events=triples,
    delta=st.integers(1, 30),
    n_shards=st.integers(1, 5),
    scale=st.sampled_from([1.0, 0.1, 1303.2033657968898]),
)
@settings(max_examples=60, deadline=None)
def test_boundary_instances_counted_exactly_once(events, delta, n_shards, scale):
    """Instances straddling a shard edge appear exactly once, in order.

    Enumerates each shard in-process (no pools, so hypothesis can drive
    many examples) and asserts the concatenation equals the serial
    enumeration as a *sequence* — any boundary loss or double count would
    break multiplicity, any mis-merge would break order.  Non-unit
    ``scale`` factors make timestamps binary-inexact, exercising the
    planner's float-slack window bound.
    """
    graph = TemporalGraph.from_tuples([(u, v, t * scale) for (u, v, t) in events])
    constraints = TimingConstraints.only_c(float(delta) * scale)
    serial = list(enumerate_instances(graph, 3, constraints))
    shards = plan_shards(graph, constraints.loose_timespan_bound(3), n_shards)
    gathered = []
    for shard in shards:
        sub = shard_graph(graph, shard)
        gathered.extend(
            shard.to_global(inst)
            for inst in enumerate_instances(sub, 3, constraints, roots=shard.local_roots)
        )
    assert gathered == serial


def test_float_deadline_chain_straddles_window_bound():
    """Chained float deadlines may exceed the single-sum shard bound.

    The serial enumerator extends deadlines step by step (``t + ΔC`` per
    event), so ``(a + dc) + dc`` can land a few ulps *above* the shard
    planner's ``a + 2 * dc`` window bound; the planner's ulp slack must
    keep such instances inside the shard.  Regression for a lost-instance
    bug found by review (values reproduce the float mismatch exactly).
    """
    dc = 1303.2033657968898
    a = 788723.3511355132
    assert (a + dc) + dc > a + 2 * dc  # the float hazard this guards
    graph = TemporalGraph.from_tuples(
        [(7, 8, a - 5 * dc), (0, 1, a), (1, 2, a + dc), (2, 3, (a + dc) + dc)]
    )
    constraints = TimingConstraints.only_c(dc)
    serial = list(enumerate_instances(graph, 3, constraints))
    assert (1, 2, 3) in serial
    shards = plan_shards(graph, constraints.loose_timespan_bound(3), 2)
    gathered = []
    for shard in shards:
        sub = shard_graph(graph, shard)
        gathered.extend(
            shard.to_global(inst)
            for inst in enumerate_instances(sub, 3, constraints, roots=shard.local_roots)
        )
    assert gathered == serial


def test_straddling_instance_deterministic_example():
    """A motif spanning the exact boundary between two shards counts once.

    Six events, two shards of three roots each: the instance (2, 3, 4)
    crosses the boundary (anchor in shard 0, later events in shard 1) and
    must be yielded by shard 0 alone.
    """
    graph = TemporalGraph.from_tuples(
        [(0, 1, 0.0), (1, 2, 10.0), (1, 2, 20.0), (2, 3, 25.0), (3, 1, 28.0), (0, 2, 60.0)]
    )
    constraints = TimingConstraints.only_c(8.0)
    serial = list(enumerate_instances(graph, 3, constraints))
    assert (2, 3, 4) in serial
    shards = plan_shards(graph, constraints.loose_timespan_bound(3), 2)
    assert shards[0].root_hi == 3  # the boundary splits the instance
    per_shard = []
    for shard in shards:
        sub = shard_graph(graph, shard)
        per_shard.append(
            [
                shard.to_global(inst)
                for inst in enumerate_instances(sub, 3, constraints, roots=shard.local_roots)
            ]
        )
    assert sum(inst == (2, 3, 4) for insts in per_shard for inst in insts) == 1
    assert merge_instances(shards, per_shard) == serial


# ----------------------------------------------------------------------
# experiments integration
# ----------------------------------------------------------------------
def test_nullmodels_replica_fanout_matches_serial():
    pytest.importorskip("numpy", reason="null-model shuffles are numpy-seeded")
    from repro.experiments import nullmodels

    serial = nullmodels.run(scale=0.05, n_null=2)
    parallel = nullmodels.run(scale=0.05, n_null=2, jobs=2)
    assert parallel.data == serial.data
