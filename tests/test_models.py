"""Tests for the four motif models and the Table-1 aspect matrix."""

import pytest

from repro.core.temporal_graph import TemporalGraph
from repro.models import (
    ALL_MODELS,
    HulovatyyModel,
    KovanenModel,
    ParanjapeModel,
    SongModel,
)
from repro.models.aspects import ASPECT_ROWS, aspect_matrix, aspect_table
from repro.algorithms.pattern import EventPattern, PatternEvent


@pytest.fixture
def clean_triangle() -> TemporalGraph:
    """A tight, induced, uninterrupted triangle — valid under all models."""
    return TemporalGraph.from_tuples([(0, 1, 10), (1, 2, 12), (0, 2, 14)])


class TestKovanen:
    def test_valid_on_clean_triangle(self, clean_triangle):
        assert KovanenModel(5).is_valid_instance(clean_triangle, (0, 1, 2))

    def test_delta_c_violation(self, clean_triangle):
        assert not KovanenModel(1).is_valid_instance(clean_triangle, (0, 1, 2))

    def test_consecutive_restriction(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, 10), (0, 3, 11), (1, 2, 12), (0, 2, 14)]
        )
        motif = (0, 2, 3)  # skips the (0,3) event, which touches node 0
        assert not KovanenModel(5).is_valid_instance(g, motif)
        assert KovanenModel(5, enforce_consecutive=False).is_valid_instance(
            g, motif
        )

    def test_allows_equal_timestamps(self):
        """Kovanen supports partial ordering: ties are tolerated."""
        g = TemporalGraph.from_tuples([(0, 1, 10), (1, 2, 10)])
        assert KovanenModel(5).is_valid_instance(g, (0, 1))

    def test_non_induced_allowed(self):
        """A skipped diagonal among motif nodes is fine for Kovanen."""
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 2, 2), (0, 2, 50)])
        # motif of just the first two events; edge (0,2) exists later but
        # outside any engagement window.
        assert KovanenModel(5).is_valid_instance(g, (0, 1))

    def test_rejects_disconnected(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (2, 3, 2)])
        assert not KovanenModel(5).is_valid_instance(g, (0, 1))

    def test_count_smoke(self, clean_triangle):
        counts = KovanenModel(5).count(clean_triangle, 3)
        assert counts["011202"] == 1


class TestSong:
    def test_valid_within_window(self, clean_triangle):
        assert SongModel(10).is_valid_instance(clean_triangle, (0, 1, 2))

    def test_window_violation(self, clean_triangle):
        assert not SongModel(3).is_valid_instance(clean_triangle, (0, 1, 2))

    def test_no_inducedness_requirement(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (0, 2, 2), (1, 2, 3), (0, 2, 4)])
        # motif skipping the (0,2) events is fine for Song.
        assert SongModel(10).is_valid_instance(g, (0, 2))

    def test_pattern_constraint(self, clean_triangle):
        chain = EventPattern(
            events=[PatternEvent("A", "B"), PatternEvent("B", "C"),
                    PatternEvent("A", "C")],
            order=[(0, 1), (1, 2)],
        )
        model = SongModel(10, pattern=chain)
        assert model.is_valid_instance(clean_triangle, (0, 1, 2))

    def test_pattern_mismatch(self, clean_triangle):
        wrong = EventPattern(
            events=[PatternEvent("A", "B"), PatternEvent("A", "B"),
                    PatternEvent("A", "B")],
        )
        model = SongModel(10, pattern=wrong)
        assert not model.is_valid_instance(clean_triangle, (0, 1, 2))


class TestHulovatyy:
    def test_valid_on_clean_triangle(self, clean_triangle):
        assert HulovatyyModel(5).is_valid_instance(clean_triangle, (0, 1, 2))

    def test_requires_total_order(self):
        g = TemporalGraph.from_tuples([(0, 1, 10), (1, 2, 10)])
        assert not HulovatyyModel(5).is_valid_instance(g, (0, 1))

    def test_inducedness_required(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, 10), (1, 2, 12), (2, 1, 13), (0, 2, 14)]
        )
        # skipping (2,1) leaves its edge uncovered -> not induced.
        motif = (0, 1, 3)
        assert not HulovatyyModel(5).is_valid_instance(g, motif)

    def test_no_consecutive_restriction(self):
        """Hulovatyy dropped Kovanen's node-engagement rule."""
        g = TemporalGraph.from_tuples(
            [(0, 1, 10), (0, 3, 11), (1, 2, 12), (0, 2, 14)]
        )
        motif = (0, 2, 3)
        assert HulovatyyModel(5).is_valid_instance(g, motif)
        assert not KovanenModel(5).is_valid_instance(g, motif)

    def test_constrained_variant(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, 10), (1, 2, 11), (1, 2, 13), (0, 2, 14)]
        )
        # motif (0→1@10, 1→2@13, ...): edge (1,2) fired at 11 in between.
        motif = (0, 2, 3)
        assert HulovatyyModel(5).is_valid_instance(g, motif)
        assert not HulovatyyModel(5, constrained=True).is_valid_instance(g, motif)

    def test_durations_shift_adjacency(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 2, 10)])
        # gap is 10; with a 6-second duration on the first event the
        # end-to-start gap is 4.
        assert not HulovatyyModel(5).is_valid_instance(g, (0, 1))
        with_durations = HulovatyyModel(5, durations={0: 6.0})
        assert with_durations.is_valid_instance(g, (0, 1))


class TestParanjape:
    def test_valid_within_window(self, clean_triangle):
        assert ParanjapeModel(10).is_valid_instance(clean_triangle, (0, 1, 2))

    def test_window_violation(self, clean_triangle):
        assert not ParanjapeModel(3).is_valid_instance(clean_triangle, (0, 1, 2))

    def test_requires_total_order(self):
        g = TemporalGraph.from_tuples([(0, 1, 10), (1, 2, 10)])
        assert not ParanjapeModel(10).is_valid_instance(g, (0, 1))

    def test_induced_by_default(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, 10), (1, 2, 12), (2, 1, 13), (0, 2, 14)]
        )
        motif = (0, 1, 3)
        assert not ParanjapeModel(10).is_valid_instance(g, motif)

    def test_original_non_induced_mode(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, 10), (1, 2, 12), (2, 1, 13), (0, 2, 14)]
        )
        motif = (0, 1, 3)
        assert ParanjapeModel(10, induced=False).is_valid_instance(g, motif)

    def test_no_consecutive_restriction(self):
        """Paranjape relaxed Kovanen's rule to catch short bursts."""
        g = TemporalGraph.from_tuples(
            [(0, 1, 10), (0, 3, 11), (1, 2, 12), (0, 2, 14)]
        )
        motif = (0, 2, 3)
        assert ParanjapeModel(10).is_valid_instance(g, motif)


class TestModelRelationships:
    """Cross-model invariants from the survey's comparison."""

    def test_kovanen_valid_implies_hulovatyy_when_induced(self, clean_triangle):
        """On an induced, uninterrupted motif both ΔC models agree."""
        k = KovanenModel(5).is_valid_instance(clean_triangle, (0, 1, 2))
        h = HulovatyyModel(5).is_valid_instance(clean_triangle, (0, 1, 2))
        assert k and h

    def test_kovanen_counts_subset_of_relaxed(self, small_sms):
        from repro.core.constraints import TimingConstraints
        strict = KovanenModel(600).count(small_sms, 3, max_nodes=3)
        relaxed = KovanenModel(600, enforce_consecutive=False).count(
            small_sms, 3, max_nodes=3
        )
        for code, n in strict.items():
            assert n <= relaxed.get(code, 0)

    def test_song_is_most_permissive(self, small_sms):
        """Every Paranjape-valid instance is Song-valid (same ΔW, no
        inducedness)."""
        from repro.algorithms.enumeration import enumerate_instances
        from repro.core.constraints import TimingConstraints
        song = SongModel(600)
        paranjape = ParanjapeModel(600)
        g = small_sms.head(400)
        for inst in enumerate_instances(
            g, 3, TimingConstraints.only_w(600), max_nodes=3
        ):
            if paranjape.is_valid_instance(g, inst):
                assert song.is_valid_instance(g, inst)


class TestAspects:
    def test_model_metadata_matches_canonical_rows(self):
        for model_cls in ALL_MODELS:
            assert model_cls.aspects == ASPECT_ROWS[model_cls.name]

    def test_exactly_four_models(self):
        assert len(ALL_MODELS) == 4
        assert len(ASPECT_ROWS) == 4

    def test_chronological_years(self):
        years = [m.year for m in ALL_MODELS]
        assert years == sorted(years) == [2011, 2014, 2015, 2017]

    def test_table_renders_all_models(self):
        text = aspect_table()
        for name in ASPECT_ROWS:
            assert name in text

    def test_matrix_shape(self):
        matrix = aspect_matrix()
        assert len(matrix) == 7  # seven aspect rows in Table 1
        for row in matrix.values():
            assert set(row) == set(ASPECT_ROWS)

    def test_delta_constraints_are_exclusive_per_model(self):
        """Each surveyed model uses exactly one of ΔC / ΔW (Table 1)."""
        for row in ASPECT_ROWS.values():
            assert row.uses_delta_c != row.uses_delta_w
