"""Differential tests: every multi-view window vs an independent engine.

:class:`~repro.online.MultiViewCensus` shares one core (graph tail,
prefix store, compiled kernel, discovery ledger) across many views, so
its contract is pinned differentially: after every push, each exact
unsliced view's counters must be *bit-identical — counter key order
included —* to an independent single-window
:class:`~repro.online.OnlineCensus` replaying the same stream, and each
node-sliced view to an independent engine fed only its slice of the
stream.  The suite stresses the shapes the fan-out can get wrong:
tie-heavy bursty streams, heterogeneous window sets, views added and
dropped mid-stream (ledger backfill), ``prune()`` interleavings, and
every storage backend.

The tick-boundary warning tests pin the predicate-stability caveat:
restrictions that judge events at a motif's boundary timestamps warn
once per view when a stream actually carries a timestamp tie.
"""

from __future__ import annotations

import math
import random
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.restrictions import (
    combine,
    satisfies_cdg,
    satisfies_consecutive_events,
)
from repro.core.constraints import TimingConstraints
from repro.core.events import Event
from repro.online import MultiViewCensus, OnlineCensus
from repro.storage import available_backends
from tests.test_online import event_streams, tie_free_streams

BACKENDS = tuple(b for b in ("list", "columnar", "numpy") if b in available_backends())

#: The window palette shared by every strategy (small enough that a
#: mid-stream add can be checked against a from-the-start oracle).
WINDOW_PALETTE = (3.0, 7.0, 15.0)

CONSTRAINTS = TimingConstraints(delta_c=3.0, delta_w=6.0)


def _ordered(counter) -> list:
    """Counter items *in key order* — the bit-identity the suite pins."""
    return list(counter.items())


def _make_oracles(windows, *, backend=None, prune_every=None):
    return {
        w: OnlineCensus(
            3, CONSTRAINTS, w, max_nodes=3, backend=backend, prune_every=prune_every
        )
        for w in set(windows)
    }


def assert_fanout_parity(events, windows, *, backend=None, prune_at=(), **mv_kwargs):
    """All views registered up front; ordered parity after every push."""
    engine = MultiViewCensus(
        3, CONSTRAINTS, max(windows), max_nodes=3, backend=backend, **mv_kwargs
    )
    for i, w in enumerate(windows):
        engine.add_view(f"view-{i}", w)
    oracles = _make_oracles(windows, backend=backend)
    for idx, ev in enumerate(events):
        engine.push(ev)
        if idx in prune_at:
            engine.prune()
        for i, w in enumerate(windows):
            oracle = oracles[w]
            if oracle.pushed <= idx:
                oracle.push(ev)
            assert _ordered(engine.counts(f"view-{i}")) == _ordered(oracle.counts())
    return engine


window_sets = st.lists(
    st.sampled_from(WINDOW_PALETTE), min_size=1, max_size=4
)


# ----------------------------------------------------------------------
# the core differential property
# ----------------------------------------------------------------------
@given(event_streams(), window_sets)
@settings(max_examples=50, deadline=None)
def test_every_view_matches_independent_engine(events, windows):
    assert_fanout_parity(events, windows)


@pytest.mark.parametrize("backend", BACKENDS)
@given(events=event_streams(max_events=14), windows=window_sets)
@settings(max_examples=10, deadline=None)
def test_fanout_parity_on_every_backend(backend, events, windows):
    engine = assert_fanout_parity(events, windows, backend=backend)
    assert engine.graph.backend == backend


@given(event_streams(max_events=16), window_sets, st.sets(st.integers(0, 15)))
@settings(max_examples=20, deadline=None)
def test_fanout_parity_survives_prune_interleavings(events, windows, prune_at):
    """Explicit prune() at arbitrary stream positions, plus auto-prune."""
    assert_fanout_parity(events, windows, prune_at=prune_at, prune_every=3)


# ----------------------------------------------------------------------
# views added and dropped mid-stream
# ----------------------------------------------------------------------
@given(
    event_streams(max_events=18),
    st.lists(
        st.tuples(
            st.integers(0, 17),                    # stream position
            st.sampled_from(["add", "drop"]),
            st.sampled_from(WINDOW_PALETTE),
        ),
        max_size=6,
    ),
)
@settings(max_examples=30, deadline=None)
def test_views_added_and_dropped_mid_stream(events, schedule):
    """Unbounded retention: a backfilled add is bit-identical to an
    oracle that watched the stream from the start, and stays identical
    on every later push; drops detach a view without disturbing others.
    """
    engine = MultiViewCensus(3, CONSTRAINTS, math.inf, max_nodes=3)
    oracles = _make_oracles(WINDOW_PALETTE)
    live: dict[str, float] = {}
    engine.add_view("view-0", WINDOW_PALETTE[-1])
    live["view-0"] = WINDOW_PALETTE[-1]
    n_added = 1
    by_position: dict[int, list] = {}
    for pos, action, window in schedule:
        by_position.setdefault(pos, []).append((action, window))
    for idx, ev in enumerate(events):
        engine.push(ev)
        for oracle in oracles.values():
            oracle.push(ev)
        for action, window in by_position.get(idx, ()):
            if action == "add":
                name = f"view-{n_added}"
                n_added += 1
                engine.add_view(name, window, backfill=True)
                live[name] = window
            elif live:
                name = sorted(live)[0]
                assert engine.drop_view(name) is True
                del live[name]
                with pytest.raises(KeyError):
                    engine.counts(name)
        for name, window in live.items():
            assert _ordered(engine.counts(name)) == _ordered(oracles[window].counts())
    assert set(engine.view_names()) == set(live)


def test_finite_retention_backfill_counter_equality():
    """With a finite ledger horizon the backfilled view still agrees
    with a from-the-start oracle as a Counter (key order may differ:
    the oracle's expired-then-reinserted keys re-enter at the tail)."""
    rng = random.Random(3)
    t = 0.0
    events = []
    for _ in range(300):
        t += rng.choice([0.0, 1.0, 1.0, 2.0])
        u, v = rng.randrange(6), rng.randrange(6)
        if u == v:
            v = (v + 1) % 6
        events.append(Event(u, v, t))
    events.sort(key=lambda e: (e.t, e.u, e.v))

    engine = MultiViewCensus(3, CONSTRAINTS, 15.0, max_nodes=3)
    oracle = OnlineCensus(3, CONSTRAINTS, 7.0, max_nodes=3)
    cut = len(events) // 2
    for ev in events[:cut]:
        engine.push(ev)
        oracle.push(ev)
    engine.add_view("late", 7.0, backfill=True)
    assert engine.counts("late") == oracle.counts()
    for ev in events[cut:]:
        engine.push(ev)
        oracle.push(ev)
        assert engine.counts("late") == oracle.counts()


# ----------------------------------------------------------------------
# node-sliced and restricted views
# ----------------------------------------------------------------------
@given(event_streams(max_nodes=6, max_events=20), st.sets(st.integers(0, 5), min_size=2, max_size=4))
@settings(max_examples=30, deadline=None)
def test_sliced_view_matches_filtered_stream_engine(events, nodes):
    """A node-sliced view == an independent engine fed only events with
    both endpoints inside the slice (clock kept in step for expiry)."""
    engine = MultiViewCensus(3, CONSTRAINTS, 15.0, max_nodes=3)
    engine.add_view("all", 15.0)
    engine.add_view("slice", 15.0, nodes=nodes)
    oracle = OnlineCensus(3, CONSTRAINTS, 15.0, max_nodes=3)
    for ev in events:
        engine.push(ev)
        if ev.u in nodes and ev.v in nodes:
            oracle.push(ev)
        else:
            oracle.advance_to(ev.t)
        assert _ordered(engine.counts("slice")) == _ordered(oracle.counts())


@given(tie_free_streams())
@settings(max_examples=20, deadline=None)
def test_restricted_view_matches_predicate_engine(events):
    engine = MultiViewCensus(3, CONSTRAINTS, 6.0, max_nodes=3)
    engine.add_view("all", 6.0)
    engine.add_view(
        "restricted", 6.0, predicate=satisfies_consecutive_events, backfill=False
    )
    oracle = OnlineCensus(
        3, CONSTRAINTS, 6.0, max_nodes=3, predicate=satisfies_consecutive_events
    )
    for ev in events:
        engine.push(ev)
        oracle.push(ev)
        assert _ordered(engine.counts("restricted")) == _ordered(oracle.counts())


# ----------------------------------------------------------------------
# the tick-boundary predicate-stability caveat (regression)
# ----------------------------------------------------------------------
class TestTickBoundaryWarning:
    def _tied_events(self):
        return [Event(0, 1, 1.0), Event(1, 2, 2.0), Event(2, 3, 2.0)]

    def test_online_census_warns_once_on_first_tie(self):
        engine = OnlineCensus(
            3, CONSTRAINTS, 6.0, predicate=satisfies_consecutive_events
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for ev in self._tied_events():
                engine.push(ev)
            engine.push(Event(3, 4, 2.0))  # a second tie: no second warning
        tick = [w for w in caught if "tick-boundary-sensitive" in str(w.message)]
        assert len(tick) == 1
        assert issubclass(tick[0].category, RuntimeWarning)

    def test_no_warning_without_ties(self):
        engine = OnlineCensus(
            3, CONSTRAINTS, 6.0, predicate=satisfies_consecutive_events
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            for ev in [Event(0, 1, 1.0), Event(1, 2, 2.0), Event(2, 3, 3.0)]:
                engine.push(ev)

    def test_no_warning_for_stable_predicate(self):
        def anchored_low(graph, instance):
            return min(instance) % 2 == 0

        engine = OnlineCensus(3, CONSTRAINTS, 6.0, predicate=anchored_low)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            for ev in self._tied_events():
                engine.push(ev)

    def test_view_added_after_tie_warns_at_registration(self):
        engine = MultiViewCensus(3, CONSTRAINTS, 6.0)
        for ev in self._tied_events():
            engine.push(ev)
        with pytest.warns(RuntimeWarning, match="tick-boundary-sensitive"):
            engine.add_view(
                "late", 6.0, predicate=satisfies_cdg, backfill=False
            )

    def test_combined_predicate_inherits_sensitivity(self):
        combined = combine(satisfies_consecutive_events, satisfies_cdg)
        assert combined.tick_boundary_sensitive is True
        engine = OnlineCensus(3, CONSTRAINTS, 6.0, predicate=combined)
        with pytest.warns(RuntimeWarning, match="tick-boundary-sensitive"):
            for ev in self._tied_events():
                engine.push(ev)


# ----------------------------------------------------------------------
# lifecycle, validation, degradation
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_events"):
            MultiViewCensus(0, CONSTRAINTS, 10.0)
        with pytest.raises(ValueError, match="retention"):
            MultiViewCensus(3, CONSTRAINTS, 0.0)
        with pytest.raises(ValueError, match="retention"):
            MultiViewCensus(3, CONSTRAINTS, float("nan"))
        with pytest.raises(ValueError, match="prune_every"):
            MultiViewCensus(3, CONSTRAINTS, 10.0, prune_every=0)

    def test_view_validation(self):
        engine = MultiViewCensus(3, CONSTRAINTS, 10.0)
        engine.add_view("a", 5.0)
        with pytest.raises(ValueError, match="already"):
            engine.add_view("a", 5.0)
        with pytest.raises(ValueError, match="window"):
            engine.add_view("b", 0.0)
        with pytest.raises(ValueError, match="window"):
            engine.add_view("b", float("inf"))
        with pytest.raises(ValueError, match="retention"):
            engine.add_view("b", 20.0)  # wider than the ledger horizon
        with pytest.raises(ValueError, match="name"):
            engine.add_view("", 5.0)

    def test_predicate_views_cannot_backfill(self):
        engine = MultiViewCensus(3, CONSTRAINTS, 10.0)
        with pytest.raises(ValueError, match="discovery time"):
            engine.add_view("p", 5.0, predicate=lambda g, i: True, backfill=True)
        engine.add_view("p", 5.0, predicate=lambda g, i: True, backfill=False)

    def test_membership_and_describe(self):
        engine = MultiViewCensus(3, CONSTRAINTS, 10.0)
        engine.add_view("a", 5.0)
        engine.add_view("b", 3.0, nodes=[1, 2, 3])
        assert len(engine) == 2
        assert "a" in engine and "missing" not in engine
        assert sorted(engine.view_names()) == ["a", "b"]
        info = engine.describe()
        assert info["retention"] == 10.0
        assert info["views"]["b"]["sliced"] is True
        assert info["views"]["a"]["mode"] == "exact"
        with pytest.raises(KeyError, match="no view named"):
            engine.counts("missing")

    def test_drop_is_idempotent(self):
        engine = MultiViewCensus(3, CONSTRAINTS, 10.0)
        engine.add_view("a", 5.0)
        assert engine.drop_view("a") is True
        assert engine.drop_view("a") is False

    def test_push_rejects_backward_time_and_advance(self):
        engine = MultiViewCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.add_view("a", 10.0)
        engine.push(Event(0, 1, 5.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            engine.push(Event(1, 2, 4.0))
        with pytest.raises(ValueError, match="backward"):
            engine.advance_to(1.0)

    def test_degraded_view_estimates_with_stderr(self):
        pytest.importorskip("numpy", reason="degraded views estimate via sampling")
        engine = MultiViewCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.add_view("a", 10.0)
        engine.push(Event(0, 1, 1.0))
        engine.push(Event(1, 2, 2.0))
        engine.degrade_view("a", q=1.0, seed=7)
        with pytest.raises(ValueError, match="view_counts"):
            engine.counts("a")
        payload = engine.view_counts("a")
        assert payload["exact"] is False
        assert payload["mode"] == "estimate"
        assert set(payload["stderr"]) == set(payload["codes"])
        # q=1.0 samples every root: the estimate is exact.
        oracle = OnlineCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        oracle.push(Event(0, 1, 1.0))
        oracle.push(Event(1, 2, 2.0))
        assert payload["codes"] == dict(oracle.counts())

    def test_degraded_view_estimate_survives_prune(self):
        """Prune must retain the largest degraded view's window, not just
        the timing bound δ — the estimator re-reads the window slice at
        view_counts() time (REVIEW: δ=5 ≪ window=50 undercounted)."""
        pytest.importorskip("numpy", reason="degraded views estimate via sampling")
        constraints = TimingConstraints(delta_c=5.0)
        engine = MultiViewCensus(2, constraints, 50.0)
        engine.add_view("a", 50.0)
        rng = random.Random(0)
        t = 0.0
        for _ in range(300):
            t += rng.choice([0.0, 0.5, 1.0])
            u, v = rng.randrange(10), rng.randrange(10)
            if u == v:
                v = (v + 1) % 10
            engine.push(Event(u, v, t))
        engine.degrade_view("a", q=1.0, seed=1)
        before = engine.view_counts("a")["codes"]
        assert engine.prune() > 0  # still drops events beyond the window
        assert engine.view_counts("a")["codes"] == before
        # q=1.0 samples every root: the post-prune estimate stays exact.
        oracle = OnlineCensus(2, constraints, 50.0)
        rng = random.Random(0)
        t = 0.0
        for _ in range(300):
            t += rng.choice([0.0, 0.5, 1.0])
            u, v = rng.randrange(10), rng.randrange(10)
            if u == v:
                v = (v + 1) % 10
            oracle.push(Event(u, v, t))
        assert before == dict(oracle.counts())

    def test_prune_reach_stays_tight_without_degraded_views(self):
        """Exact-only engines keep the min(δ, retention) reach."""
        constraints = TimingConstraints(delta_c=5.0)
        engine = MultiViewCensus(2, constraints, 50.0)
        engine.add_view("a", 50.0)
        for i in range(60):
            engine.push(Event(i % 7, (i + 1) % 7, float(i)))
        engine.prune()
        # Only events within δ=5 of now (plus slack) survive.
        assert len(engine.graph) <= 7

    def test_drop_after_degrade_on_shared_node_bucket(self):
        """degrade_view unroutes; a later drop_view must not re-remove
        from a node bucket another sliced view still occupies."""
        engine = MultiViewCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.add_view("s1", 10.0, nodes=[1, 2])
        engine.add_view("s2", 10.0, nodes=[1, 3])
        engine.degrade_view("s1", q=0.5)
        assert engine.drop_view("s1") is True
        engine.push(Event(1, 3, 1.0))
        engine.push(Event(1, 3, 2.0))
        assert engine.counts("s2")

    def test_redegrade_validates_q(self):
        engine = MultiViewCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.add_view("a", 10.0)
        engine.degrade_view("a", q=0.5)
        for bad in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError, match="q must be"):
                engine.degrade_view("a", q=bad)
        engine.degrade_view("a", q=0.75)  # valid re-degrade still allowed
        with pytest.raises(ValueError, match="q must be"):
            engine.degrade_view("a", q=2.0)

    def test_exact_view_counts_payload(self):
        engine = MultiViewCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.add_view("a", 10.0)
        engine.push(Event(0, 1, 1.0))
        engine.push(Event(1, 2, 2.0))
        payload = engine.view_counts("a")
        assert payload["exact"] is True
        assert payload["total"] == 1
        assert payload["codes"] == dict(engine.counts("a"))


# ----------------------------------------------------------------------
# the many-view spot check (the acceptance shape, scaled for CI)
# ----------------------------------------------------------------------
def test_many_views_spot_check():
    """120 concurrent views (global + tenant slices) over one bursty
    stream: a seeded sample must be bit-identical to independent
    engines — the scaled-down version of the 1000-view acceptance run
    in benchmarks/bench_multiview.py."""
    rng = random.Random(20260808)
    t = 0.0
    events = []
    for _ in range(2000):
        t += rng.choice([0.0, 0.0, 1.0, 1.0, 2.0, 4.0])
        u, v = rng.randrange(30), rng.randrange(30)
        if u == v:
            v = (v + 1) % 30
        events.append(Event(u, v, t))
    events.sort(key=lambda e: (e.t, e.u, e.v))

    engine = MultiViewCensus(3, CONSTRAINTS, 15.0, max_nodes=3)
    specs: dict[str, dict] = {}
    for i, w in enumerate(WINDOW_PALETTE):
        name = f"global-{i}"
        engine.add_view(name, w)
        specs[name] = {"window": w, "nodes": None}
    for i in range(117):
        name = f"tenant-{i}"
        nodes = frozenset(rng.sample(range(30), 3))
        window = rng.choice(WINDOW_PALETTE)
        engine.add_view(name, window, nodes=nodes)
        specs[name] = {"window": window, "nodes": nodes}
    assert len(engine) == 120

    for ev in events:
        engine.push(ev)

    sample = rng.sample(sorted(specs), 6) + ["global-0"]
    for name in sample:
        spec = specs[name]
        oracle = OnlineCensus(3, CONSTRAINTS, spec["window"], max_nodes=3)
        for ev in events:
            if spec["nodes"] is None or (ev.u in spec["nodes"] and ev.v in spec["nodes"]):
                oracle.push(ev)
            else:
                oracle.advance_to(ev.t)
        assert _ordered(engine.counts(name)) == _ordered(oracle.counts()), name
