"""Fuzz and edge-case tests for the storage append seam.

The online engine trusts three corners of the mutation contract that the
parity suite never stressed directly:

* ``append`` of an event at *exactly* the current max timestamp (the
  same-tick tail tick every bursty stream produces),
* ``extend`` with an empty batch (a no-op that must not disturb state),
* appends after ``load(mmap=True)`` — the in-memory tail over read-only
  mapped pages — with windowed queries straddling the tail/compacted
  boundary.

Oracle comparisons are order-insensitive (sets of events, counts): a
fresh ``from_events`` build may legally order same-timestamp events
differently (``(t, u, v)`` sort) than arrival order does.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.storage import available_backends, get_backend

# Only appendable engines are under contract here; read-only views
# (the partitioned directory backend) opt out via supports_append.
BACKENDS = tuple(
    name for name in available_backends() if get_backend(name).supports_append
)

BASE = [
    Event(0, 1, 1.0),
    Event(0, 2, 2.0),
    Event(1, 2, 2.0),
    Event(2, 3, 5.0),
]


def _windows(storage):
    """A sweep of closed windows that straddle every interesting boundary."""
    times = sorted({0.0, *storage.times})
    edges = times + [t + 0.5 for t in times] + [times[-1] + 10.0]
    return [(lo, hi) for lo in edges for hi in edges if lo <= hi]


def _assert_query_parity(storage, oracle):
    """Every windowed query answers identically (order-insensitively)."""
    events = storage.events
    oracle_events = oracle.events
    assert sorted(events) == sorted(oracle_events)
    assert sorted(storage.times) == sorted(oracle.times)
    assert storage.nodes == oracle.nodes
    assert storage.num_edges == oracle.num_edges
    nodes = sorted(oracle.nodes)
    edges = sorted({ev.edge for ev in oracle_events})
    for lo, hi in _windows(oracle):
        assert storage.count_events_in(lo, hi) == oracle.count_events_in(lo, hi)
        assert {events[i] for i in storage.events_in(lo, hi)} == {
            oracle_events[i] for i in oracle.events_in(lo, hi)
        }
        for node in nodes:
            assert storage.count_node_events_in(node, lo, hi) == (
                oracle.count_node_events_in(node, lo, hi)
            )
            assert {events[i] for i in storage.node_events_in(node, lo, hi)} == {
                oracle_events[i] for i in oracle.node_events_in(node, lo, hi)
            }
            assert {events[i] for i in storage.node_events_between(node, lo, hi)} == {
                oracle_events[i] for i in oracle.node_events_between(node, lo, hi)
            }
        for edge in edges:
            assert storage.count_edge_events_in(edge, lo, hi) == (
                oracle.count_edge_events_in(edge, lo, hi)
            )
        adj = storage.adjacent_events_between(nodes[:3], lo, hi)
        oadj = oracle.adjacent_events_between(nodes[:3], lo, hi)
        assert {events[i] for i in adj} == {oracle_events[i] for i in oadj}


@pytest.mark.parametrize("backend", BACKENDS)
class TestAppendEdges:
    def test_append_at_exact_max_timestamp(self, backend):
        storage = get_backend(backend).from_events(list(BASE))
        idx = storage.append(Event(3, 4, 5.0))  # == end_time, same tick
        assert idx == len(BASE)
        assert storage.end_time == 5.0
        oracle = get_backend("list").from_events(BASE + [Event(3, 4, 5.0)])
        _assert_query_parity(storage, oracle)

    def test_append_same_tick_repeatedly(self, backend):
        storage = get_backend(backend).from_events(list(BASE))
        for k in range(4):
            storage.append(Event(k, k + 1, 5.0))
        assert storage.count_events_in(5.0, 5.0) == 5
        assert storage.count_node_events_in(2, 5.0, 5.0) == 3

    def test_extend_empty_batch_is_a_noop(self, backend):
        storage = get_backend(backend).from_events(list(BASE))
        before = storage.to_events()
        assert storage.update([]) == []
        assert storage.to_events() == before
        assert len(storage) == len(BASE)
        # an empty batch on an empty storage is equally inert
        empty = get_backend(backend).from_events([])
        assert empty.update([]) == []
        assert len(empty) == 0
        assert empty.start_time is None and empty.end_time is None

    def test_rejected_batch_leaves_storage_untouched(self, backend):
        storage = get_backend(backend).from_events(list(BASE))
        with pytest.raises(ValueError, match="non-decreasing"):
            storage.update([Event(0, 1, 6.0), Event(1, 2, 4.0)])
        assert storage.to_events() == tuple(BASE)


# ----------------------------------------------------------------------
# hypothesis fuzz: random base + random same-or-later appended tail
# ----------------------------------------------------------------------
def _stream(draw_gaps, n_nodes=4):
    return st.lists(
        st.tuples(
            st.integers(0, n_nodes - 1),
            st.integers(0, n_nodes - 1),
            draw_gaps,
        ).filter(lambda e: e[0] != e[1]),
        min_size=0,
        max_size=12,
    )


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    base=_stream(st.sampled_from([0.0, 1.0, 2.0])),
    tail=_stream(st.sampled_from([0.0, 0.0, 1.0, 3.0])),
)
@settings(max_examples=25, deadline=None)
def test_fuzz_append_tail_queries(backend, base, tail):
    t = 0.0
    base_events = []
    for u, v, dt in base:
        t += dt
        base_events.append(Event(u, v, t))
    base_events.sort(key=lambda e: (e.t, e.u, e.v))
    storage = get_backend(backend).from_events(base_events)
    t = base_events[-1].t if base_events else 0.0
    appended = []
    for u, v, dt in tail:
        t += dt
        appended.append(Event(u, v, t))
        storage.append(Event(u, v, t))
    oracle = get_backend("list").from_events(base_events + appended)
    _assert_query_parity(storage, oracle)


# ----------------------------------------------------------------------
# append-after-mmap-load: the tail/compacted boundary (PR 3's corner)
# ----------------------------------------------------------------------
@pytest.fixture()
def saved_pages(tmp_path):
    pytest.importorskip("numpy", reason="page persistence requires numpy")
    graph = TemporalGraph(BASE, backend="numpy")
    path = tmp_path / "pages"
    graph.save(path)
    return path


class TestAppendAfterMmapLoad:
    def test_straddling_windows_after_append(self, saved_pages):
        graph = TemporalGraph.load(saved_pages, mmap=True)
        appended = [Event(3, 4, 5.0), Event(4, 0, 5.0), Event(0, 3, 7.0)]
        for ev in appended:
            graph.append(ev)
        oracle = TemporalGraph(BASE + appended, backend="list")
        _assert_query_parity(graph.storage, oracle.storage)

    def test_straddling_windows_after_forced_compaction(self, saved_pages, monkeypatch):
        from repro.storage.numpy_backend import NumpyStorage

        monkeypatch.setattr(NumpyStorage, "compact_threshold", 2)
        graph = TemporalGraph.load(saved_pages, mmap=True)
        appended = [Event(3, 4, 5.0), Event(4, 0, 6.0), Event(0, 3, 7.0)]
        for ev in appended:
            graph.append(ev)  # crosses the compaction threshold mid-stream
        oracle = TemporalGraph(BASE + appended, backend="list")
        _assert_query_parity(graph.storage, oracle.storage)

    def test_backing_pages_stay_untouched(self, saved_pages):
        before = {
            p.name: p.read_bytes() for p in saved_pages.iterdir() if p.suffix == ".npy"
        }
        graph = TemporalGraph.load(saved_pages, mmap=True)
        for k in range(6):
            graph.append(Event(k % 3, k % 3 + 1, 5.0 + k))
        graph.storage.compact()
        after = {
            p.name: p.read_bytes() for p in saved_pages.iterdir() if p.suffix == ".npy"
        }
        assert before == after

    def test_reload_sees_only_saved_events(self, saved_pages):
        graph = TemporalGraph.load(saved_pages, mmap=True)
        graph.append(Event(3, 4, 9.0))
        again = TemporalGraph.load(saved_pages, mmap=True)
        assert len(again) == len(BASE)
