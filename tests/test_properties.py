"""Property-based tests (hypothesis) on the core invariants.

These target the invariants DESIGN.md §6 lists as test oracles: notation
canonicality, the pair-sequence bijection, timing-constraint monotonicity,
restriction-as-filter subset relations, and shuffle conservation laws.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.counting import count_motifs
from repro.algorithms.enumeration import enumerate_instances, is_instance
from repro.algorithms.restrictions import (
    is_static_induced,
    satisfies_cdg,
    satisfies_consecutive_events,
)
from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import (
    ALL_PAIR_TYPES,
    classify_pair,
    code_of_pair_sequence,
    pair_sequence_of_code,
)
from repro.core.notation import (
    all_motif_codes,
    canonical_code,
    is_valid_code,
    parse_code,
)
from repro.core.temporal_graph import TemporalGraph
from repro.randomization.shuffles import link_shuffle, permuted_timestamps

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - no-numpy fallback leg
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="shuffles are numpy-seeded")


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def small_graphs(max_nodes=5, max_events=14, max_time=40):
    """Random small temporal graphs with integer timestamps."""
    event = st.tuples(
        st.integers(0, max_nodes - 1),
        st.integers(0, max_nodes - 1),
        st.integers(0, max_time),
    ).filter(lambda e: e[0] != e[1])
    return st.lists(event, min_size=1, max_size=max_events).map(
        lambda evs: TemporalGraph.from_tuples([(u, v, float(t)) for u, v, t in evs])
    )


pair_sequences = st.lists(st.sampled_from(ALL_PAIR_TYPES), min_size=1, max_size=4)


# ----------------------------------------------------------------------
# notation
# ----------------------------------------------------------------------
@given(pair_sequences)
def test_pair_sequence_roundtrip(sequence):
    """code_of_pair_sequence is a right inverse of pair_sequence_of_code."""
    code = code_of_pair_sequence(sequence)
    assert pair_sequence_of_code(code) == tuple(sequence)
    assert is_valid_code(code)
    assert len({d for d in code}) <= 3


@given(st.sampled_from(all_motif_codes(3, 3) + all_motif_codes(4, 4)))
def test_parse_canonical_roundtrip(code):
    """Every generated code re-canonicalizes to itself."""
    assert canonical_code(parse_code(code)) == code


@given(small_graphs())
def test_enumerated_instances_have_canonical_codes(graph):
    constraints = TimingConstraints(delta_c=15, delta_w=30)
    for inst in enumerate_instances(graph, 3, constraints):
        code = canonical_code([graph.events[i].edge for i in inst])
        assert is_valid_code(code)


# ----------------------------------------------------------------------
# event pairs
# ----------------------------------------------------------------------
@given(
    st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(lambda e: e[0] != e[1]),
    st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(lambda e: e[0] != e[1]),
)
def test_classification_total_and_deterministic(first, second):
    """Sharing a node ⇔ classified; classification is a function."""
    ptype = classify_pair(first, second)
    shares = bool(set(first) & set(second))
    assert (ptype is not None) == shares
    assert classify_pair(first, second) is ptype


# ----------------------------------------------------------------------
# timing constraints
# ----------------------------------------------------------------------
@given(small_graphs(), st.integers(2, 12), st.integers(2, 12))
@settings(max_examples=40)
def test_smaller_delta_c_yields_subset(graph, dc_small, dc_big):
    dc_lo, dc_hi = sorted((dc_small, dc_big))
    small = set(enumerate_instances(graph, 3, TimingConstraints.only_c(dc_lo)))
    big = set(enumerate_instances(graph, 3, TimingConstraints.only_c(dc_hi)))
    assert small <= big


@given(small_graphs(), st.integers(2, 20), st.integers(2, 20))
@settings(max_examples=40)
def test_smaller_delta_w_yields_subset(graph, dw_small, dw_big):
    dw_lo, dw_hi = sorted((dw_small, dw_big))
    small = set(enumerate_instances(graph, 3, TimingConstraints.only_w(dw_lo)))
    big = set(enumerate_instances(graph, 3, TimingConstraints.only_w(dw_hi)))
    assert small <= big


@given(small_graphs())
@settings(max_examples=40)
def test_both_constraints_intersect(graph):
    """ΔC ∧ ΔW instances = only-ΔC instances ∩ only-ΔW instances."""
    only_c = set(enumerate_instances(graph, 3, TimingConstraints.only_c(8)))
    only_w = set(enumerate_instances(graph, 3, TimingConstraints.only_w(20)))
    both = set(
        enumerate_instances(graph, 3, TimingConstraints(delta_c=8, delta_w=20))
    )
    assert both == only_c & only_w


@given(small_graphs())
@settings(max_examples=40)
def test_every_enumerated_instance_satisfies_definition(graph):
    constraints = TimingConstraints(delta_c=10, delta_w=25)
    for inst in enumerate_instances(graph, 3, constraints, max_nodes=3):
        assert is_instance(graph, inst, constraints, max_nodes=3)


# ----------------------------------------------------------------------
# restrictions are filters
# ----------------------------------------------------------------------
@given(small_graphs())
@settings(max_examples=30)
def test_restrictions_only_remove_instances(graph):
    constraints = TimingConstraints(delta_c=12, delta_w=30)
    vanilla = count_motifs(graph, 3, constraints, max_nodes=3)
    for predicate in (
        satisfies_consecutive_events,
        satisfies_cdg,
        is_static_induced,
    ):
        restricted = count_motifs(
            graph, 3, constraints, max_nodes=3, predicate=predicate
        )
        for code, n in restricted.items():
            assert n <= vanilla.get(code, 0)


@given(small_graphs())
@settings(max_examples=30)
def test_global_inducedness_implies_window_inducedness(graph):
    constraints = TimingConstraints(delta_c=12, delta_w=30)
    for inst in enumerate_instances(graph, 3, constraints, max_nodes=3):
        if is_static_induced(graph, inst, scope="global"):
            assert is_static_induced(graph, inst, scope="window")


# ----------------------------------------------------------------------
# shuffles
# ----------------------------------------------------------------------
@requires_numpy
@given(small_graphs(), st.integers(0, 2**16))
@settings(max_examples=30)
def test_permuted_timestamps_conserves_structure(graph, seed):
    shuffled = permuted_timestamps(graph, seed=seed)
    assert sorted(shuffled.times) == sorted(graph.times)
    assert sorted(ev.edge for ev in shuffled.events) == sorted(
        ev.edge for ev in graph.events
    )


@requires_numpy
@given(small_graphs(), st.integers(0, 2**16))
@settings(max_examples=30)
def test_link_shuffle_conserves_time_lists(graph, seed):
    shuffled = link_shuffle(graph, seed=seed)
    assert len(shuffled) == len(graph)
    original = sorted(
        tuple(graph.times[i] for i in idxs) for idxs in graph.edge_events.values()
    )
    new = sorted(
        tuple(shuffled.times[i] for i in idxs)
        for idxs in shuffled.edge_events.values()
    )
    assert original == new


# ----------------------------------------------------------------------
# cross-checking the taxonomy against enumeration
# ----------------------------------------------------------------------
def test_dense_burst_realizes_many_codes():
    """A dense all-pairs burst realizes every 2-event code and all its
    3-event instances carry valid codes from the ≤4-node universe."""
    events = []
    t = 0.0
    for u, v in itertools.permutations(range(4), 2):
        events.append((u, v, t))
        t += 1.0
    events.append((0, 1, t))  # one repeated edge so 0101 is realizable
    graph = TemporalGraph.from_tuples(events)
    constraints = TimingConstraints(delta_c=30, delta_w=30)
    codes = {
        canonical_code([graph.events[i].edge for i in inst])
        for inst in enumerate_instances(graph, 2, constraints)
    }
    assert set(all_motif_codes(2, 3)) <= codes
    universe = set(all_motif_codes(3, 4))
    for inst in enumerate_instances(graph, 3, constraints, max_nodes=4):
        code = canonical_code([graph.events[i].edge for i in inst])
        assert code in universe
