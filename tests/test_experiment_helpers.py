"""Tests for the experiment-harness helpers and 4-event census corners."""

import pytest

from repro.algorithms.counting import run_census
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph
from repro.experiments.base import (
    DELTA_C_INDUCEDNESS,
    DELTA_W_TIMING,
    RATIOS_3E,
    RATIOS_4E,
    fmt_count,
    fmt_signed,
    load_graphs,
    ratio_label,
)


class TestFormatting:
    def test_fmt_count_bands(self):
        assert fmt_count(999) == "999"
        assert fmt_count(1_500) == "1.50K"
        assert fmt_count(35_600) == "35.6K"
        assert fmt_count(6_350_000) == "6.35M"

    def test_fmt_signed(self):
        assert fmt_signed(1.234) == "+1.23"
        assert fmt_signed(-0.5) == "-0.50"
        assert fmt_signed(0.0) == "+0.00"
        assert fmt_signed(2.5, digits=1) == "+2.5"


class TestRatioLabels:
    def test_three_event_labels(self):
        assert ratio_label(1.0, 3) == "only-ΔW"
        assert ratio_label(0.5, 3) == "only-ΔC"
        assert ratio_label(0.66, 3) == "ΔC/ΔW=0.66"

    def test_four_event_labels(self):
        assert ratio_label(0.33, 4) == "only-ΔC"
        assert ratio_label(0.5, 4) == "ΔC/ΔW=0.5"
        assert ratio_label(1.0, 4) == "only-ΔW"

    def test_labels_consistent_with_regimes(self):
        """The experiment labels agree with TimingConstraints.regime."""
        from repro.core.constraints import ConstraintRegime

        for n_events, ratios in ((3, RATIOS_3E), (4, RATIOS_4E)):
            for ratio in ratios:
                constraints = TimingConstraints.from_ratio(3000, ratio)
                regime = constraints.regime(n_events)
                label = ratio_label(ratio, n_events)
                if label == "only-ΔW":
                    assert regime is ConstraintRegime.ONLY_DELTA_W
                elif label == "only-ΔC":
                    assert regime is ConstraintRegime.ONLY_DELTA_C
                else:
                    assert regime is ConstraintRegime.BOTH


class TestLoadGraphs:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy", reason="dataset synthesis is numpy-seeded")

    def test_explicit_names(self):
        graphs = load_graphs(["sms-copenhagen"], scale=0.05)
        assert [g.name for g in graphs] == ["sms-copenhagen"]

    def test_default_fallback(self):
        graphs = load_graphs(None, scale=0.05, default=["bitcoin-otc"])
        assert [g.name for g in graphs] == ["bitcoin-otc"]

    def test_paper_parameters(self):
        assert DELTA_C_INDUCEDNESS == 1500.0
        assert DELTA_W_TIMING == 3000.0


class TestFourEventCensus:
    def test_disjoint_pairs_only_in_four_node_motifs(self):
        """A 4-node motif can have consecutive events sharing no node."""
        g = TemporalGraph.from_tuples(
            [(0, 1, 0), (0, 2, 5), (1, 3, 9), (2, 3, 12)]
        )
        census = run_census(
            g, 4, TimingConstraints(delta_c=10, delta_w=20), max_nodes=4
        )
        groups = census.pair_group_counts()
        assert groups["disjoint"] == 1  # (0,2) then (1,3) share nothing
        census3 = run_census(
            g, 3, TimingConstraints(delta_c=10, delta_w=20), max_nodes=3
        )
        assert census3.pair_group_counts()["disjoint"] == 0

    def test_four_event_codes_are_canonical(self, small_sms):
        from repro.core.notation import is_valid_code

        g = small_sms.head(300)
        census = run_census(
            g, 4, TimingConstraints(delta_c=300, delta_w=600), max_nodes=4
        )
        for code in census.code_counts:
            assert is_valid_code(code)
            assert len(code) == 8

    def test_four_event_subset_of_looser_window(self, small_sms):
        g = small_sms.head(300)
        tight = run_census(
            g, 4, TimingConstraints.from_ratio(600, 0.33), max_nodes=4
        )
        loose = run_census(
            g, 4, TimingConstraints.from_ratio(600, 1.0), max_nodes=4
        )
        for code, n in tight.code_counts.items():
            assert n <= loose.code_counts.get(code, 0)
