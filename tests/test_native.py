"""The native (JIT) kernel tier and the batched census fold.

Four layers of guarantees on top of the engine differential suite in
``test_engine.py``:

* **batched encoder units** — the array relabel/classify of
  :mod:`repro.algorithms.batched` against the serial
  :func:`~repro.core.notation.canonical_code` /
  :func:`~repro.core.eventpairs.classify_pair` oracles;
* **consumer bit-identity under the block lane** — ``run_census``
  (sample lists, caps, filters included) and ``total_instances`` with
  the native kernel forced, against the generic path;
* **demotion** — numba-less builds resolve ``"native"`` down the
  fallback chain exactly once per session (pinned in the
  ``engine.kernel.demote`` obs counter), stale plans re-resolve at bind
  time, runtime tail-pending fallback is counted, and
  :func:`~repro.engine.clear_plan_cache` invalidates the capability
  memo;
* **multi-view parity** — the fan-out engine behaves identically with
  the native kernel registered.

Everything here runs without numba: the ``@njit`` functions fall back
to plain Python over the same arrays, which is the point — the
algorithm, not the compiler, is under test.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.algorithms import batched
from repro.algorithms.counting import run_census, total_instances
from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import classify_pair
from repro.core.events import Event
from repro.core.notation import canonical_code
from repro.core.temporal_graph import TemporalGraph
from repro.engine import (
    KERNELS,
    clear_plan_cache,
    compile_plan,
    has_kernel,
    resolve_kernel_name,
    run_plan,
    run_plan_blocks,
)
from repro.engine.native import NativeExtensionKernel, warm_up
from repro.online import MultiViewCensus, OnlineCensus
from repro.storage import available_backends

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="the numpy storage backend is not registered",
)

CONSTRAINTS = TimingConstraints(delta_c=3.0, delta_w=8.0)


@contextmanager
def registered_native():
    """Force-register the native kernel for one test body (see test_engine)."""
    added = "native" not in KERNELS
    if added:
        KERNELS["native"] = NativeExtensionKernel
    clear_plan_cache()
    try:
        yield
    finally:
        if added:
            del KERNELS["native"]
        clear_plan_cache()


@pytest.fixture(autouse=True)
def _fresh_resolution():
    """Every test starts and ends with pristine plan/capability caches."""
    clear_plan_cache()
    obs.disable()
    yield
    clear_plan_cache()
    obs.disable()


def event_lists(max_nodes=5, max_events=18):
    """Tie- and burst-heavy sorted event lists (the admission corners)."""
    step = st.tuples(
        st.integers(0, max_nodes - 1),
        st.integers(0, max_nodes - 1),
        st.sampled_from([0.0, 0.0, 0.5, 1.0, 2.0, 5.0]),
    ).filter(lambda e: e[0] != e[1])

    def build(steps):
        t = 0.0
        events = []
        for u, v, dt in steps:
            t += dt
            events.append(Event(u, v, t))
        events.sort(key=lambda e: (e.t, e.u, e.v))
        return events

    return st.lists(step, min_size=1, max_size=max_events).map(build)


endpoint_blocks = st.integers(2, 6).flatmap(
    lambda k: st.lists(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=k,
            max_size=k,
        ),
        min_size=1,
        max_size=24,
    )
)


# ----------------------------------------------------------------------
# batched encoder units vs the serial oracles
# ----------------------------------------------------------------------
class TestBatchedEncoders:
    @settings(max_examples=120, deadline=None)
    @given(endpoint_blocks)
    def test_encode_block_codes_matches_canonical_code(self, rows):
        k = len(rows[0])
        us = np.array([[u for u, _ in row] for row in rows], dtype=np.int64)
        vs = np.array([[v for _, v in row] for row in rows], dtype=np.int64)
        keys = batched.encode_block_codes(us, vs)
        for row, key in zip(rows, keys.tolist()):
            assert str(key).zfill(2 * k) == canonical_code(row)

    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 4), st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)
            ).filter(lambda q: q[0] != q[1] and q[2] != q[3]),
            min_size=1,
            max_size=40,
        )
    )
    def test_classify_block_pairs_matches_classify_pair(self, quads):
        u1, v1, u2, v2 = (
            np.array([q[i] for q in quads], dtype=np.int64) for i in range(4)
        )
        ids = batched.classify_block_pairs(u1, v1, u2, v2)
        for q, pid in zip(quads, ids.tolist()):
            assert batched.PAIR_BY_ID[pid] is classify_pair(q[:2], q[2:])

    def test_encoder_raises_on_self_loops_like_the_serial_path(self):
        us = np.array([[0, 1]], dtype=np.int64)
        vs = np.array([[0, 2]], dtype=np.int64)
        with pytest.raises(ValueError, match="self-loop"):
            batched.encode_block_codes(us, vs)


# ----------------------------------------------------------------------
# consumer bit-identity through the block lane
# ----------------------------------------------------------------------
class TestBlockLaneParity:
    @settings(max_examples=40, deadline=None)
    @given(event_lists(), st.sampled_from([2, 3, 4]), st.sampled_from([None, 3]))
    def test_run_census_with_samples_bit_identical(self, events, n_events, max_nodes):
        with registered_native():
            graph = TemporalGraph(events, backend="numpy")
            kwargs = dict(
                max_nodes=max_nodes,
                collect_timespans=True,
                collect_positions=True,
                sample_cap=5,  # small enough that the strict cap is exercised
            )
            generic_plan = compile_plan(
                n_events, CONSTRAINTS, None, graph.storage,
                max_nodes=max_nodes, kernel="generic",
            )
            reference = run_census(
                graph, n_events, CONSTRAINTS, plan=generic_plan, **kwargs
            )
            native = run_census(graph, n_events, CONSTRAINTS, **kwargs)
            assert dict(native.code_counts) == dict(reference.code_counts)
            assert list(native.code_counts) == list(reference.code_counts)
            assert dict(native.pair_counts) == dict(reference.pair_counts)
            assert list(native.pair_counts) == list(reference.pair_counts)
            assert native.pair_sequence_counts == reference.pair_sequence_counts
            assert list(native.pair_sequence_counts) == list(
                reference.pair_sequence_counts
            )
            assert native.timespans == reference.timespans
            assert list(native.timespans) == list(reference.timespans)
            assert native.intermediate_positions == reference.intermediate_positions
            assert native.total == reference.total

    def test_sample_values_are_python_scalars(self):
        events = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 0, 4.0)]
        with registered_native():
            graph = TemporalGraph(events, backend="numpy")
            census = run_census(
                graph, 3, CONSTRAINTS, collect_timespans=True, collect_positions=True
            )
            for bucket in census.timespans.values():
                assert all(type(x) is float for x in bucket)
            for bucket in census.intermediate_positions.values():
                assert all(
                    type(pos) is int and type(rel) is float for pos, rel in bucket
                )

    def test_sample_code_filters_apply(self):
        events = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (1, 0, 3.5), (2, 0, 4.0)]
        with registered_native():
            graph = TemporalGraph(events, backend="numpy")
            full = run_census(graph, 3, CONSTRAINTS, collect_timespans=True)
            target = next(iter(full.timespans))
            filtered = run_census(
                graph, 3, CONSTRAINTS, collect_timespans=True,
                timespan_codes=[target],
            )
            assert set(filtered.timespans) == {target}
            assert filtered.timespans[target] == full.timespans[target]

    @settings(max_examples=30, deadline=None)
    @given(event_lists(), st.sampled_from([2, 3, 4]))
    def test_total_instances_parity(self, events, n_events):
        with registered_native():
            graph = TemporalGraph(events, backend="numpy")
            reference = total_instances(
                TemporalGraph(events, backend="list"), n_events, CONSTRAINTS
            )
            assert total_instances(graph, n_events, CONSTRAINTS) == reference

    @pytest.mark.parametrize("max_nodes", [1, 2])
    def test_degenerate_node_caps(self, max_nodes):
        # A root always carries two nodes, so max_nodes=1 exceeds the cap
        # from the start; only zero-new-node extensions may be admitted.
        events = [(0, 1, 1.0), (1, 0, 2.0), (0, 1, 2.5), (1, 2, 3.0), (0, 1, 4.0)]
        with registered_native():
            graph = TemporalGraph(events, backend="numpy")
            native_plan = compile_plan(
                3, CONSTRAINTS, None, graph.storage, max_nodes=max_nodes
            )
            generic_plan = compile_plan(
                3, CONSTRAINTS, None, graph.storage,
                max_nodes=max_nodes, kernel="generic",
            )
            assert native_plan.kernel_name == "native"
            assert list(run_plan(native_plan, graph)) == list(
                run_plan(generic_plan, graph)
            )

    def test_run_plan_blocks_contract(self):
        events = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 3, 4.0)]
        with registered_native():
            graph = TemporalGraph(events, backend="numpy")
            plan = compile_plan(3, CONSTRAINTS, None, graph.storage)
            blocks = run_plan_blocks(plan, graph)
            assert blocks is not None
            rows = [tuple(row) for block in blocks for row in block.tolist()]
            assert rows == list(run_plan(plan, graph))
            # The lane refuses what it cannot serve bit-identically.
            assert run_plan_blocks(
                compile_plan(1, CONSTRAINTS, None, graph.storage), graph
            ) is None
            restricted = compile_plan(
                3, CONSTRAINTS, lambda g, i: True, graph.storage
            )
            assert run_plan_blocks(restricted, graph) is None

    def test_sharded_census_reresolves_native_plan_in_workers(self):
        # Plans pickle by kernel *name*: a plan compiled where "native"
        # is registered must demote cleanly inside numba-less workers.
        events = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 3, 4.0), (1, 3, 5.0)]
        with registered_native():
            graph = TemporalGraph(events, backend="numpy")
            plan = compile_plan(3, CONSTRAINTS, None, graph.storage)
            assert plan.kernel_name == "native"
            serial = run_census(graph, 3, CONSTRAINTS, plan=plan)
            sharded = run_census(graph, 3, CONSTRAINTS, plan=plan, jobs=2)
            assert dict(sharded.code_counts) == dict(serial.code_counts)
            assert list(sharded.code_counts) == list(serial.code_counts)
            assert sharded.total == serial.total


# ----------------------------------------------------------------------
# demotion: countable, memoized, invalidated with the plan cache
# ----------------------------------------------------------------------
class TestDemotion:
    def test_native_resolves_down_the_chain_and_counts_once(self, monkeypatch):
        has_kernel("native")  # force the one-shot import probe first
        monkeypatch.delitem(KERNELS, "native", raising=False)
        clear_plan_cache()
        registry = obs.enable()
        storage = TemporalGraph(
            [(0, 1, 1.0)], backend="numpy"
        ).storage
        plan = compile_plan(3, CONSTRAINTS, None, storage)
        assert plan.kernel_name == "numpy"
        key = "engine.kernel.demote{from=native,to=numpy}"
        assert registry.counters[key] == 1
        # The capability memo makes the next compile free *and* silent.
        compile_plan(4, CONSTRAINTS, None, storage)
        assert registry.counters[key] == 1

    def test_stale_plan_demotes_at_bind_time(self):
        events = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]
        graph = TemporalGraph(events, backend="numpy")
        with registered_native():
            plan = compile_plan(3, CONSTRAINTS, None, graph.storage)
            assert plan.kernel_name == "native"
        # The registry no longer has "native", but the plan object lives
        # on (a worker unpickling it, a caller holding it): binding must
        # re-resolve, not crash or silently go generic.
        registry = obs.enable()
        kernel = plan.bind(graph.storage)
        assert kernel.kernel_name == "numpy"
        assert (
            registry.counters["engine.kernel.demote{from=native,to=numpy}"] == 1
        )
        assert list(run_plan(plan, graph)) == list(
            run_plan(
                compile_plan(3, CONSTRAINTS, None, graph.storage, kernel="generic"),
                graph,
            )
        )

    def test_clear_plan_cache_invalidates_capability_resolution(self):
        storage = TemporalGraph([(0, 1, 1.0)], backend="numpy").storage
        with registered_native():
            assert compile_plan(3, CONSTRAINTS, None, storage).kernel_name == "native"
            del KERNELS["native"]
            # Without invalidation both memo layers would happily serve
            # the unregistered name forever.
            clear_plan_cache()
            assert compile_plan(3, CONSTRAINTS, None, storage).kernel_name == "numpy"
            KERNELS["native"] = NativeExtensionKernel  # context-exit symmetry

    def test_tail_pending_fallback_is_counted_and_correct(self):
        with registered_native():
            graph = TemporalGraph([(0, 1, 1.0), (1, 2, 2.0)], backend="numpy")
            graph.append(Event(0, 2, 3.0))  # lands in the un-banded tail
            plan = compile_plan(3, CONSTRAINTS, None, graph.storage)
            assert plan.kernel_name == "native"
            # The block lane refuses while the banded arrays are pending.
            assert run_plan_blocks(plan, graph) is None
            registry = obs.enable()
            native = list(run_plan(plan, graph))
            key = "engine.kernel.demote{from=native,to=generic}"
            assert registry.counters[key] >= 1
            obs.disable()
            generic_plan = compile_plan(
                3, CONSTRAINTS, None, graph.storage, kernel="generic"
            )
            assert native == list(run_plan(generic_plan, graph))

    def test_resolve_kernel_name_walks_unknown_names_to_generic(self):
        assert resolve_kernel_name("definitely-not-a-kernel") == "generic"
        assert resolve_kernel_name("generic") == "generic"

    def test_warm_up_runs_on_every_build(self):
        # Without numba this exercises the plain-Python fallbacks; with
        # numba it forces compilation (benchmarks time it separately).
        warm_up()


# ----------------------------------------------------------------------
# online / multi-view parity under the native kernel
# ----------------------------------------------------------------------
class TestOnlineParity:
    @settings(max_examples=20, deadline=None)
    @given(event_lists(max_events=14), st.sampled_from([3.0, 7.0]))
    def test_multiview_fanout_parity_under_native(self, events, window):
        with registered_native():
            engine = MultiViewCensus(
                3, CONSTRAINTS, window, max_nodes=3, backend="numpy", prune_every=5
            )
            engine.add_view("w", window)
            oracle = OnlineCensus(
                3, CONSTRAINTS, window, max_nodes=3, backend="list", prune_every=5
            )
            for event in events:
                engine.push(event)
                oracle.push(event)
                assert list(engine.counts("w").items()) == list(
                    oracle.counts().items()
                )
