"""Tests for ranking analysis (Tables 3/6)."""

from repro.analysis.rankings import rank_changes, rank_motifs, reduction_rate, top_k


class TestRankMotifs:
    def test_most_frequent_is_rank_one(self):
        ranks = rank_motifs({"a": 10, "b": 5, "c": 1})
        assert ranks == {"a": 1, "b": 2, "c": 3}

    def test_ties_break_by_code(self):
        ranks = rank_motifs({"b": 5, "a": 5})
        assert ranks["a"] == 1
        assert ranks["b"] == 2

    def test_universe_pads_missing_codes(self):
        ranks = rank_motifs({"a": 10}, universe=["a", "b", "c"])
        assert ranks["a"] == 1
        assert set(ranks) == {"a", "b", "c"}

    def test_empty(self):
        assert rank_motifs({}) == {}


class TestRankChanges:
    def test_ascension_is_positive(self):
        before = {"a": 10, "b": 5}
        after = {"a": 1, "b": 5}  # b overtakes a
        changes = rank_changes(before, after)
        assert changes["b"] == +1
        assert changes["a"] == -1

    def test_no_change_is_zero(self):
        counts = {"a": 3, "b": 2}
        assert all(v == 0 for v in rank_changes(counts, counts).values())

    def test_with_universe(self):
        before = {"a": 10, "b": 8, "c": 5}
        after = {"c": 10}
        changes = rank_changes(before, after, universe=["a", "b", "c"])
        assert changes["c"] == +2

    def test_changes_sum_to_zero_over_universe(self):
        before = {"a": 9, "b": 6, "c": 3, "d": 1}
        after = {"d": 9, "c": 6, "b": 3, "a": 1}
        changes = rank_changes(before, after, universe=["a", "b", "c", "d"])
        assert sum(changes.values()) == 0


class TestHelpers:
    def test_top_k(self):
        assert top_k({"a": 1, "b": 9, "c": 5}, 2) == [("b", 9), ("c", 5)]

    def test_reduction_rate(self):
        assert reduction_rate({"a": 10}, {"a": 1}) == 0.1
        assert reduction_rate({}, {}) == 0.0
