"""Unit tests for ΔC / ΔW timing constraints and the Section 4.5 regimes."""

import math

import pytest

from repro.core.constraints import ConstraintRegime, TimingConstraints


class TestConstruction:
    def test_rejects_nonpositive_delta_c(self):
        with pytest.raises(ValueError):
            TimingConstraints(delta_c=0)

    def test_rejects_nonpositive_delta_w(self):
        with pytest.raises(ValueError):
            TimingConstraints(delta_w=-5)

    def test_only_c_factory(self):
        c = TimingConstraints.only_c(10)
        assert c.delta_c == 10
        assert c.delta_w is None

    def test_only_w_factory(self):
        c = TimingConstraints.only_w(10)
        assert c.delta_c is None
        assert c.delta_w == 10

    def test_from_ratio(self):
        c = TimingConstraints.from_ratio(3000, 0.5)
        assert c.delta_c == 1500
        assert c.delta_w == 3000

    def test_from_ratio_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TimingConstraints.from_ratio(3000, 0)

    def test_frozen(self):
        c = TimingConstraints.only_c(10)
        with pytest.raises(AttributeError):
            c.delta_c = 20


class TestAdmits:
    def test_paper_section_45_example(self):
        """Events at 1, 9, 10 with ΔC=5 vs ΔW=10 (Section 4.5)."""
        times = [1, 9, 10]
        assert TimingConstraints.only_w(10).admits(times)
        assert not TimingConstraints.only_c(5).admits(times)

    def test_gap_equal_to_bound_is_admitted(self):
        assert TimingConstraints.only_c(5).admits([0, 5, 10])
        assert TimingConstraints.only_w(10).admits([0, 5, 10])

    def test_both_bounds_apply(self):
        c = TimingConstraints(delta_c=5, delta_w=7)
        assert c.admits([0, 4, 7])
        assert not c.admits([0, 4, 8])   # span 8 > ΔW
        assert not c.admits([0, 6, 7])   # gap 6 > ΔC

    def test_short_sequences_always_admitted(self):
        c = TimingConstraints(delta_c=1, delta_w=1)
        assert c.admits([])
        assert c.admits([5])

    def test_unconstrained_admits_everything(self):
        assert TimingConstraints().admits([0, 1e9])


class TestDeadline:
    def test_only_c_deadline(self):
        c = TimingConstraints.only_c(5)
        assert c.next_event_deadline(0, 10) == 15

    def test_only_w_deadline(self):
        c = TimingConstraints.only_w(100)
        assert c.next_event_deadline(0, 10) == 100

    def test_both_takes_minimum(self):
        c = TimingConstraints(delta_c=5, delta_w=12)
        assert c.next_event_deadline(0, 10) == 12
        assert c.next_event_deadline(0, 3) == 8

    def test_unconstrained_is_infinite(self):
        assert TimingConstraints().next_event_deadline(0, 0) == math.inf


class TestRegime:
    """The Section 4.5 three-case classification."""

    def test_ratio_below_threshold_is_only_c(self):
        c = TimingConstraints(delta_c=1000, delta_w=3000)  # ratio 1/3
        assert c.regime(3) is ConstraintRegime.ONLY_DELTA_C

    def test_ratio_at_lower_threshold_is_only_c(self):
        c = TimingConstraints(delta_c=1500, delta_w=3000)  # ratio 1/2 = 1/(m-1)
        assert c.regime(3) is ConstraintRegime.ONLY_DELTA_C

    def test_middle_ratio_is_both(self):
        c = TimingConstraints.from_ratio(3000, 0.66)
        assert c.regime(3) is ConstraintRegime.BOTH

    def test_ratio_one_is_only_w(self):
        c = TimingConstraints.from_ratio(3000, 1.0)
        assert c.regime(3) is ConstraintRegime.ONLY_DELTA_W

    def test_regime_depends_on_event_count(self):
        c = TimingConstraints(delta_c=1500, delta_w=3000)
        assert c.regime(3) is ConstraintRegime.ONLY_DELTA_C  # 0.5 <= 1/2
        assert c.regime(4) is ConstraintRegime.BOTH          # 1/3 < 0.5 < 1

    def test_paper_four_event_sweep(self):
        for ratio, expected in [
            (0.33, ConstraintRegime.ONLY_DELTA_C),
            (0.5, ConstraintRegime.BOTH),
            (0.66, ConstraintRegime.BOTH),
            (1.0, ConstraintRegime.ONLY_DELTA_W),
        ]:
            c = TimingConstraints.from_ratio(3000, ratio)
            assert c.regime(4) is expected, ratio

    def test_single_bound_regimes(self):
        assert TimingConstraints.only_c(5).regime(3) is ConstraintRegime.ONLY_DELTA_C
        assert TimingConstraints.only_w(5).regime(3) is ConstraintRegime.ONLY_DELTA_W

    def test_unbounded_raises(self):
        with pytest.raises(ValueError):
            TimingConstraints().regime(3)

    def test_single_event_raises(self):
        with pytest.raises(ValueError):
            TimingConstraints.only_c(5).regime(1)


class TestOrdering:
    def test_tighter_than(self):
        tight = TimingConstraints(delta_c=5, delta_w=10)
        loose = TimingConstraints(delta_c=10, delta_w=20)
        assert tight.is_tighter_than(loose)
        assert not loose.is_tighter_than(tight)

    def test_none_counts_as_infinity(self):
        assert TimingConstraints.only_c(5).is_tighter_than(TimingConstraints())
        assert not TimingConstraints().is_tighter_than(TimingConstraints.only_c(5))

    def test_loose_timespan_bound(self):
        assert TimingConstraints.only_c(5).loose_timespan_bound(3) == 10
        assert TimingConstraints(delta_c=5, delta_w=8).loose_timespan_bound(3) == 8
        assert TimingConstraints().loose_timespan_bound(3) == math.inf

    def test_describe_mentions_regime(self):
        c = TimingConstraints.from_ratio(3000, 0.66)
        assert "ΔC" in c.describe(3)
        assert "ΔW-and-ΔC" in c.describe(3)
