"""Tests for burstiness and memory statistics."""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.burstiness import (
    burstiness,
    burstiness_summary,
    edge_burstiness,
    graph_burstiness,
    graph_memory,
    memory_coefficient,
    node_burstiness,
)
from repro.randomization.shuffles import link_shuffle, permuted_timestamps


class TestBurstiness:
    def test_regular_train_is_negative(self):
        assert burstiness([10.0] * 20) == pytest.approx(-1.0)

    def test_poisson_train_near_zero(self):
        rng = np.random.default_rng(0)
        gaps = rng.exponential(10.0, size=20_000)
        assert abs(burstiness(gaps)) < 0.05

    def test_bursty_train_positive(self):
        gaps = [1.0] * 50 + [5000.0] * 2
        assert burstiness(gaps) > 0.5

    def test_degenerate_inputs(self):
        assert burstiness([]) == 0.0
        assert burstiness([5.0]) == 0.0
        assert burstiness([0.0, 0.0]) == 0.0


class TestMemory:
    def test_alternating_gaps_negative_memory(self):
        gaps = [1.0, 100.0] * 50
        assert memory_coefficient(gaps) < -0.9

    def test_monotone_gaps_positive_memory(self):
        gaps = list(np.linspace(1, 100, 60))
        assert memory_coefficient(gaps) > 0.9

    def test_degenerate_inputs(self):
        assert memory_coefficient([]) == 0.0
        assert memory_coefficient([1.0, 2.0]) == 0.0
        assert memory_coefficient([5.0, 5.0, 5.0]) == 0.0


class TestGraphLevel:
    def test_generated_networks_are_bursty(self, small_sms):
        """The activity model's reaction chains create bursty trains."""
        assert graph_burstiness(small_sms) > 0.1

    def test_timestamp_permutation_kills_burstiness_less_than_structure(
        self, small_sms
    ):
        """Permuting timestamps preserves the *global* gap multiset, so
        global burstiness is identical — the destruction happens at the
        per-node level."""
        shuffled = permuted_timestamps(small_sms, seed=0)
        assert graph_burstiness(shuffled) == pytest.approx(
            graph_burstiness(small_sms)
        )
        orig_nodes = node_burstiness(small_sms, min_events=5)
        new_nodes = node_burstiness(shuffled, min_events=5)
        common = set(orig_nodes) & set(new_nodes)
        assert common
        orig_median = float(np.median([orig_nodes[n] for n in common]))
        new_median = float(np.median([new_nodes[n] for n in common]))
        assert new_median < orig_median

    def test_link_shuffle_preserves_edge_burstiness_multiset(self, small_sms):
        shuffled = link_shuffle(small_sms, seed=1)
        orig = sorted(edge_burstiness(small_sms, min_events=3).values())
        new = sorted(edge_burstiness(shuffled, min_events=3).values())
        assert np.allclose(orig, new)

    def test_summary_keys(self, small_sms):
        summary = burstiness_summary(small_sms)
        assert set(summary) == {
            "global_burstiness",
            "global_memory",
            "median_node_burstiness",
            "nodes_measured",
        }
        assert summary["nodes_measured"] > 0

    def test_memory_defined_on_graph(self, small_sms):
        value = graph_memory(small_sms)
        assert -1.0 <= value <= 1.0
