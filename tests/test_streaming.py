"""Tests for the streaming event-pattern matcher."""

import pytest

from repro.algorithms.pattern import EventPattern, PatternEvent, chain_pattern
from repro.algorithms.streaming import Match, StreamMatcher, match_graph
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


class TestBasics:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            StreamMatcher(chain_pattern(2), 0)

    def test_single_event_pattern(self):
        matcher = StreamMatcher(
            EventPattern(events=[PatternEvent("A", "B")]), delta_w=10
        )
        matches = matcher.push(Event(0, 1, 5.0))
        assert len(matches) == 1
        assert matches[0].binding == {"A": 0, "B": 1}

    def test_chain_match_emitted_on_completion(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=100)
        assert matcher.push(Event(0, 1, 0.0)) == []
        matches = matcher.push(Event(1, 2, 10.0))
        assert len(matches) == 1
        assert matches[0].events == (Event(0, 1, 0.0), Event(1, 2, 10.0))
        assert matches[0].timespan == 10.0

    def test_emitted_counter(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=100)
        matcher.push(Event(0, 1, 0.0))
        matcher.push(Event(1, 2, 10.0))
        assert matcher.emitted == 1


class TestWindow:
    def test_expired_partials_never_complete(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=5)
        matcher.push(Event(0, 1, 0.0))
        assert matcher.push(Event(1, 2, 10.0)) == []

    def test_window_boundary_inclusive(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=10)
        matcher.push(Event(0, 1, 0.0))
        assert len(matcher.push(Event(1, 2, 10.0))) == 1

    def test_expiry_uses_the_admission_arithmetic(self):
        """A partial the next arrival may legally complete must survive expiry.

        8.3 - 4.4 rounds up past 3.9, so the rearranged horizon test
        ``t_first >= now - ΔW`` would expire the partial even though the
        admission check ``now - t_first <= ΔW`` (the closed-window
        semantics of :attr:`Match.timespan`) accepts the extension.  Both
        sides must use the same subtraction — the ≤-vs-< window-edge rule
        the shard planner guards with its overlap slack.
        """
        matcher = StreamMatcher(chain_pattern(2), delta_w=4.4)
        matcher.push(Event(0, 1, 3.9))
        matches = matcher.push(Event(1, 2, 8.3))
        assert len(matches) == 1
        assert matches[0].timespan <= 4.4

    def test_same_timestamp_boundary_events_complete(self):
        """Same-tick arrivals at exactly t_first + ΔW all extend the partial."""
        matcher = StreamMatcher(chain_pattern(2), delta_w=10)
        matcher.push(Event(0, 1, 0.0))
        assert len(matcher.push(Event(1, 2, 10.0))) == 1
        # a second boundary event in the same tick: the partial is still live
        assert len(matcher.push(Event(1, 3, 10.0))) == 1
        # one tick later the partial is gone
        assert matcher.push(Event(1, 4, 10.5)) == []

    def test_expiry_agrees_with_match_timespan_everywhere(self):
        """Brute-force cross-check: emitted chain matches == admissible pairs.

        Every (first, second) pair sharing the chain shape with
        ``t2 - t1 <= ΔW`` — the closed :attr:`Match.timespan` window —
        must be emitted, including the awkward one-decimal floats where
        ``now - ΔW`` and ``now - t_first`` round differently.
        """
        times = [round(0.1 * k, 1) for k in range(0, 90, 7)]
        events = [Event(i % 3, i % 3 + 1, t) for i, t in enumerate(times)]
        delta_w = 2.1
        matcher = StreamMatcher(chain_pattern(2), delta_w=delta_w)
        emitted = sum(len(matcher.push(ev)) for ev in events)
        expected = sum(
            1
            for i, a in enumerate(events)
            for b in events[i + 1 :]
            if a.v == b.u and b.t - a.t <= delta_w and b.t > a.t
        )
        assert emitted == expected

    def test_live_partials_pruned(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=5)
        matcher.push(Event(0, 1, 0.0))
        assert matcher.live_partials == 1
        matcher.push(Event(5, 6, 100.0))
        # the old partial expired; only the new event's partial remains
        assert matcher.live_partials == 1


class TestPartialOrder:
    def test_unordered_events_match_in_any_order(self):
        pattern = EventPattern(
            events=[PatternEvent("A", "B"), PatternEvent("A", "C")], order=[]
        )
        matcher = StreamMatcher(pattern, delta_w=100)
        matcher.push(Event(0, 2, 0.0))   # binds A→C first
        matches = matcher.push(Event(0, 1, 5.0))
        # the pattern is symmetric in (B, C), so both automorphic
        # assignments are reported
        assert len(matches) == 2
        assert {tuple(sorted(m.binding.values())) for m in matches} == {(0, 1, 2)}

    def test_ordered_events_must_arrive_in_order(self):
        pattern = EventPattern(
            events=[PatternEvent("A", "B"), PatternEvent("B", "C")],
            order=[(0, 1)],
        )
        matcher = StreamMatcher(pattern, delta_w=100)
        matcher.push(Event(1, 2, 0.0))   # only A→B may start a match
        matches = matcher.push(Event(0, 1, 5.0))
        assert matches == []
        # correct order succeeds
        fresh = StreamMatcher(pattern, delta_w=100)
        fresh.push(Event(0, 1, 0.0))
        assert len(fresh.push(Event(1, 2, 5.0))) == 1


class TestOverlappingMatches:
    def test_all_combinations_reported(self):
        """Two candidate first events × one closer = two matches."""
        matcher = StreamMatcher(chain_pattern(2), delta_w=100)
        matcher.push(Event(0, 1, 0.0))
        matcher.push(Event(5, 1, 1.0))  # also ends at node 1? no: (5,1) is A=5,B=1
        matches = matcher.push(Event(1, 2, 10.0))
        assert len(matches) == 2

    def test_load_shedding_cap(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=1e9, max_partials=3)
        for k in range(10):
            matcher.push(Event(2 * k + 10, 2 * k + 11, float(k)))
        assert matcher.live_partials <= 3


class TestMatchGraph:
    def test_match_graph_finds_chains(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 2, 5), (2, 3, 9)])
        matches = match_graph(g, chain_pattern(2), delta_w=100)
        assert len(matches) == 2  # (0→1,1→2) and (1→2,2→3)

    def test_match_is_dataclass_with_time_accessors(self):
        g = TemporalGraph.from_tuples([(0, 1, 3), (1, 2, 7)])
        match = match_graph(g, chain_pattern(2), delta_w=100)[0]
        assert isinstance(match, Match)
        assert match.t_first == 3
        assert match.t_last == 7

    def test_agrees_with_song_model_counts(self, small_sms):
        """Streaming convey-chain matches == enumerated 011x convey counts."""
        from repro.algorithms.enumeration import enumerate_instances
        from repro.core.constraints import TimingConstraints
        from repro.core.eventpairs import PairType, pair_sequence_of_events

        g = small_sms.head(300)
        delta_w = 900
        stream_count = 0
        for match in match_graph(g, chain_pattern(2, total=True), delta_w):
            if match.events[1].t > match.events[0].t:  # strict order only
                stream_count += 1
        enum_count = 0
        for inst in enumerate_instances(
            g, 2, TimingConstraints.only_w(delta_w)
        ):
            events = [g.events[i] for i in inst]
            if pair_sequence_of_events(events) == (PairType.CONVEY,):
                enum_count += 1
        assert stream_count == enum_count
