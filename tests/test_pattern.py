"""Tests for event patterns (the Song model's query language)."""

import pytest

from repro.algorithms.pattern import (
    EventPattern,
    PatternEvent,
    chain_pattern,
    square_pattern,
)
from repro.core.events import Event


class TestPatternEvent:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            PatternEvent("A", "A")


class TestConstruction:
    def test_requires_events(self):
        with pytest.raises(ValueError):
            EventPattern(events=[])

    def test_rejects_bad_order_pairs(self):
        with pytest.raises(ValueError):
            EventPattern(events=[PatternEvent("A", "B")], order=[(0, 5)])

    def test_rejects_cyclic_order(self):
        events = [PatternEvent("A", "B"), PatternEvent("B", "C")]
        with pytest.raises(ValueError, match="cycle"):
            EventPattern(events=events, order=[(0, 1), (1, 0)])

    def test_variables_in_appearance_order(self):
        p = chain_pattern(2)
        assert p.variables == ("A", "B", "C")

    def test_predecessors_transitive(self):
        p = chain_pattern(3)  # total order 0<1<2
        assert p.predecessors(2) == {0, 1}
        assert p.predecessors(0) == set()

    def test_total_order_detection(self):
        assert chain_pattern(3, total=True).is_total_order()
        assert not chain_pattern(3, total=False).is_total_order()
        assert EventPattern(events=[PatternEvent("A", "B")]).is_total_order()


class TestMatching:
    def test_chain_matches_convey_sequence(self):
        p = chain_pattern(2)
        events = [Event(10, 11, 0.0), Event(11, 12, 5.0)]
        assert p.matches_sequence(events)

    def test_chain_rejects_wrong_shape(self):
        p = chain_pattern(2)
        events = [Event(10, 11, 0.0), Event(10, 12, 5.0)]  # out-burst
        assert not p.matches_sequence(events)

    def test_length_mismatch(self):
        assert not chain_pattern(2).matches_sequence([Event(0, 1, 0.0)])

    def test_partial_order_allows_either_time_order(self):
        """Unordered pattern events match regardless of arrival order."""
        p = EventPattern(
            events=[PatternEvent("A", "B"), PatternEvent("A", "C")], order=[]
        )
        forward = [Event(0, 1, 0.0), Event(0, 2, 5.0)]
        backward = [Event(0, 2, 0.0), Event(0, 1, 5.0)]
        assert p.matches_sequence(forward)
        assert p.matches_sequence(backward)

    def test_total_order_constrains_assignment(self):
        """The paper's acyclic-triangle example: B→C precedes A→B and A→C."""
        p = EventPattern(
            events=[
                PatternEvent("A", "B"),
                PatternEvent("A", "C"),
                PatternEvent("B", "C"),
            ],
            order=[(2, 0), (2, 1)],
        )
        # B→C first: matches.
        ok = [Event(1, 2, 0.0), Event(0, 1, 5.0), Event(0, 2, 9.0)]
        assert p.matches_sequence(ok)
        # B→C last: violates the partial order.
        bad = [Event(0, 1, 0.0), Event(0, 2, 5.0), Event(1, 2, 9.0)]
        assert not p.matches_sequence(bad)

    def test_injective_binding(self):
        p = chain_pattern(2)  # A→B→C with distinct variables
        events = [Event(0, 1, 0.0), Event(1, 0, 5.0)]  # C would equal A
        assert not p.matches_sequence(events)

    def test_non_injective_mode(self):
        p = EventPattern(
            events=[PatternEvent("A", "B"), PatternEvent("B", "C")],
            order=[(0, 1)],
            injective=False,
        )
        events = [Event(0, 1, 0.0), Event(1, 0, 5.0)]
        assert p.matches_sequence(events)


class TestLabels:
    def test_edge_labels(self):
        def labeler(ev):
            return "big" if ev.t > 10 else "small"
        p = EventPattern(
            events=[PatternEvent("A", "B", edge_label="small"),
                    PatternEvent("B", "C", edge_label="big")],
            order=[(0, 1)],
            edge_labeler=labeler,
        )
        assert p.matches_sequence([Event(0, 1, 5.0), Event(1, 2, 20.0)])
        assert not p.matches_sequence([Event(0, 1, 20.0), Event(1, 2, 25.0)])

    def test_edge_label_without_labeler_raises(self):
        p = EventPattern(
            events=[PatternEvent("A", "B", edge_label="x")],
        )
        with pytest.raises(ValueError, match="edge_labeler"):
            p.matches_sequence([Event(0, 1, 0.0)])

    def test_node_labels(self):
        kind = {0: "customer", 1: "merchant", 2: "customer"}
        p = EventPattern(
            events=[PatternEvent("A", "B")],
            node_labels={"A": "customer", "B": "merchant"},
            node_labeler=kind.get,
        )
        assert p.matches_sequence([Event(0, 1, 0.0)])
        assert not p.matches_sequence([Event(1, 0, 0.0)])

    def test_node_label_without_labeler_raises(self):
        p = EventPattern(
            events=[PatternEvent("A", "B")], node_labels={"A": "x"}
        )
        with pytest.raises(ValueError, match="node_labeler"):
            p.matches_sequence([Event(0, 1, 0.0)])


class TestTemplates:
    def test_square_pattern_shape(self):
        p = square_pattern(total=True)
        events = [
            Event(0, 1, 0.0), Event(1, 2, 2.0), Event(2, 3, 4.0), Event(3, 0, 6.0)
        ]
        assert p.matches_sequence(events)

    def test_square_rejects_triangle(self):
        p = square_pattern(total=True)
        events = [
            Event(0, 1, 0.0), Event(1, 2, 2.0), Event(2, 0, 4.0), Event(0, 1, 6.0)
        ]
        assert not p.matches_sequence(events)
