"""The unified execution engine: plans, kernels, drivers, parity.

Three layers of guarantees:

* **plan units** — :func:`repro.engine.compile_plan` resolves node caps,
  shard safety, deadline arithmetic and kernel capability exactly once,
  caches hashable configurations, and pickles (the parallel engine ships
  plans to shard workers);
* **kernel differential** — a Hypothesis suite asserting
  ``extend_frontier`` parity between the generic and the vectorized
  NumPy kernel, across every registered storage backend and between the
  partial-major and event-major traversals;
* **consumer bit-identity** — ``run_census`` (per backend, forced
  kernels, precompiled plans) and ``OnlineCensus`` (push-by-push against
  the batch window, through snapshot/restore) produce identical output,
  key order included — the refactor-parity contract of the engine PR.
"""

from __future__ import annotations

import math
import pickle
from collections import Counter
from contextlib import contextmanager
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.counting import run_census
from repro.algorithms.enumeration import enumerate_instances, is_instance
from repro.algorithms.restrictions import satisfies_consecutive_events
from repro.core.constraints import TimingConstraints
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.engine import (
    ExecutionPlan,
    GenericExtensionKernel,
    Partial,
    clear_plan_cache,
    compile_plan,
    has_kernel,
    is_shard_safe,
    run_plan,
)
from repro.online import OnlineCensus
from repro.storage import available_backends, get_backend

BACKENDS = tuple(b for b in ("list", "columnar", "numpy") if b in available_backends())

requires_numpy_backend = pytest.mark.skipif(
    "numpy" not in BACKENDS, reason="the numpy storage backend is not registered"
)


@contextmanager
def registered_native():
    """Force-register the native kernel for one test body.

    Without numba the ``@njit`` functions run as plain Python over the
    same arrays, so this exercises the identical algorithm on every
    build.  A context manager rather than a fixture: Hypothesis forbids
    function-scoped fixtures in ``@given`` tests, and registration must
    wrap each shrunk example, not the whole test function.
    """
    from repro.engine import KERNELS
    from repro.engine.native import NativeExtensionKernel

    added = "native" not in KERNELS
    if added:
        KERNELS["native"] = NativeExtensionKernel
    clear_plan_cache()
    try:
        yield
    finally:
        if added:
            del KERNELS["native"]
        clear_plan_cache()


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def event_lists(max_nodes=5, max_events=18):
    """Tie- and burst-heavy sorted event lists (the admission corners)."""
    step = st.tuples(
        st.integers(0, max_nodes - 1),
        st.integers(0, max_nodes - 1),
        st.sampled_from([0.0, 0.0, 0.5, 1.0, 2.0, 5.0]),
    ).filter(lambda e: e[0] != e[1])

    def build(steps):
        t = 0.0
        events = []
        for u, v, dt in steps:
            t += dt
            events.append(Event(u, v, t))
        events.sort(key=lambda e: (e.t, e.u, e.v))
        return events

    return st.lists(step, min_size=1, max_size=max_events).map(build)


configs = st.tuples(
    st.sampled_from([2, 3, 3, 4]),          # n_events
    st.sampled_from([2.0, 4.0, None]),      # delta_c
    st.sampled_from([6.0, 12.0, None]),     # delta_w
    st.sampled_from([None, 3]),             # max_nodes
)


def _constraints(delta_c, delta_w) -> TimingConstraints:
    if delta_c is None and delta_w is None:
        return TimingConstraints(delta_w=8.0)
    return TimingConstraints(delta_c=delta_c, delta_w=delta_w)


def _prefix_partials(graph: TemporalGraph, j: int, constraints, max_nodes):
    """Every live ``j``-event partial of ``graph``, as engine Partials."""
    event_at = graph.storage.event_at
    out = []
    for inst in enumerate_instances(graph, j, constraints, max_nodes=max_nodes):
        nodes: tuple[int, ...] = ()
        for idx in inst:
            ev = event_at(idx)
            for n in (ev.u, ev.v):
                if n not in nodes:
                    nodes = nodes + (n,)
        out.append(
            Partial(inst, nodes, event_at(inst[0]).t, event_at(inst[-1]).t)
        )
    return out


# ----------------------------------------------------------------------
# plan compilation units
# ----------------------------------------------------------------------
class TestCompilePlan:
    def test_node_cap_defaults_to_connected_growth_bound(self):
        plan = compile_plan(3, TimingConstraints.only_w(10.0))
        assert plan.node_cap == 4
        capped = compile_plan(3, TimingConstraints.only_w(10.0), max_nodes=3)
        assert capped.node_cap == 3

    def test_rejects_empty_motifs(self):
        with pytest.raises(ValueError):
            compile_plan(0, TimingConstraints.only_w(10.0))

    def test_deadline_matches_constraints_arithmetic(self):
        for delta_c, delta_w in ((2.0, None), (None, 7.5), (1.5, 4.0), (None, None)):
            constraints = TimingConstraints(delta_c=delta_c, delta_w=delta_w)
            plan = compile_plan(3, constraints)
            for t_root, t_last in ((0.0, 0.0), (1.0, 3.5), (2.25, 2.25), (0.1, 7.3)):
                assert plan.deadline(t_root, t_last) == (
                    constraints.next_event_deadline(t_root, t_last)
                )

    def test_infinite_bounds_resolved(self):
        plan = compile_plan(3, TimingConstraints.only_c(2.0))
        assert plan.delta_c == 2.0
        assert math.isinf(plan.delta_w)
        assert plan.delta == 4.0  # (m-1) * delta_c

    def test_shard_safety_resolution(self):
        constraints = TimingConstraints.only_w(10.0)
        assert compile_plan(3, constraints).shard_safe
        assert compile_plan(3, constraints, satisfies_consecutive_events).shard_safe

        def opaque(graph, inst):  # pragma: no cover - never called
            return True

        assert not compile_plan(3, constraints, opaque).shard_safe
        assert is_shard_safe(None)
        assert not is_shard_safe(opaque)

    def test_kernel_capability_follows_backend(self):
        constraints = TimingConstraints.only_w(10.0)
        for backend in BACKENDS:
            storage = get_backend(backend).from_events(
                [Event(0, 1, 1.0)], presorted=True
            )
            plan = compile_plan(3, constraints, None, storage)
            if backend == "numpy":
                # The numpy backend advertises the JIT tier; without
                # numba the resolution demotes one rung to "numpy".
                expected = "native" if has_kernel("native") else "numpy"
            else:
                expected = "generic"
            assert plan.kernel_name == expected
            kernel = plan.bind(storage)
            assert kernel.kernel_name == expected

    def test_unknown_advertised_kernel_demotes_to_generic(self):
        class Weird:
            extension_kernel = "definitely-not-a-kernel"

        plan = compile_plan(3, TimingConstraints.only_w(10.0), None, Weird())
        assert plan.kernel_name == "generic"
        assert not has_kernel("definitely-not-a-kernel")

    def test_explicit_kernel_override(self):
        storage = get_backend(BACKENDS[0]).from_events(
            [Event(0, 1, 1.0)], presorted=True
        )
        plan = compile_plan(
            3, TimingConstraints.only_w(10.0), None, storage, kernel="generic"
        )
        assert plan.kernel_name == "generic"
        assert isinstance(plan.bind(storage), GenericExtensionKernel)

    def test_session_cache_reuses_plans(self):
        clear_plan_cache()
        constraints = TimingConstraints(delta_c=3.0, delta_w=9.0)
        first = compile_plan(3, constraints, satisfies_consecutive_events)
        second = compile_plan(3, constraints, satisfies_consecutive_events)
        assert first is second
        different = compile_plan(
            3, constraints, satisfies_consecutive_events, max_nodes=3
        )
        assert different is not first

    def test_unhashable_restriction_still_compiles(self):
        import functools

        unhashable = functools.partial(lambda bad, g, i: True, [1, 2])
        plan = compile_plan(3, TimingConstraints.only_w(10.0), unhashable)
        assert plan.predicate is unhashable

    def test_plan_pickles_for_shard_workers(self):
        plan = compile_plan(
            3,
            TimingConstraints(delta_c=2.0, delta_w=6.0),
            satisfies_consecutive_events,
            max_nodes=3,
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert isinstance(clone, ExecutionPlan)
        assert clone.node_cap == plan.node_cap
        assert clone.kernel_name == plan.kernel_name
        assert clone.deadline(1.0, 2.0) == plan.deadline(1.0, 2.0)
        assert clone.predicate is satisfies_consecutive_events


# ----------------------------------------------------------------------
# kernel differential: generic vs numpy, partial-major vs event-major
# ----------------------------------------------------------------------
class TestKernelParity:
    @settings(max_examples=60, deadline=None)
    @given(event_lists(), configs, st.integers(1, 3))
    def test_generic_kernel_agrees_across_backends(self, events, config, j):
        n_events, delta_c, delta_w, max_nodes = config
        if j >= n_events:
            j = n_events - 1 or 1
        constraints = _constraints(delta_c, delta_w)
        reference = None
        for backend in BACKENDS:
            graph = TemporalGraph(events, backend=backend)
            plan = compile_plan(
                n_events,
                constraints,
                None,
                graph.storage,
                max_nodes=max_nodes,
                kernel="generic",
            )
            partials = _prefix_partials(graph, j, constraints, max_nodes)
            kernel = plan.bind(graph.storage)
            result = kernel.extend_frontier(partials, 0, len(graph))
            if reference is None:
                reference = result
            else:
                assert result == reference

    @requires_numpy_backend
    @settings(max_examples=60, deadline=None)
    @given(event_lists(), configs, st.integers(1, 3))
    def test_numpy_kernel_matches_generic(self, events, config, j):
        n_events, delta_c, delta_w, max_nodes = config
        if j >= n_events:
            j = n_events - 1 or 1
        constraints = _constraints(delta_c, delta_w)
        graph = TemporalGraph(events, backend="numpy")
        partials = _prefix_partials(graph, j, constraints, max_nodes)
        generic = compile_plan(
            n_events,
            constraints,
            None,
            graph.storage,
            max_nodes=max_nodes,
            kernel="generic",
        ).bind(graph.storage)
        vectorized = compile_plan(
            n_events,
            constraints,
            None,
            graph.storage,
            max_nodes=max_nodes,
            kernel="numpy",
        ).bind(graph.storage)
        assert vectorized.kernel_name == "numpy"
        m = len(graph)
        assert vectorized.extend_frontier(partials, 0, m) == (
            generic.extend_frontier(partials, 0, m)
        )
        # need_nodes=False drops only the node tuples, nothing else.
        lean = vectorized.extend_frontier(partials, 0, m, need_nodes=False)
        assert [(p, i) for p, i, _ in lean] == [
            (p, i) for p, i, _ in generic.extend_frontier(partials, 0, m)
        ]

    @settings(max_examples=40, deadline=None)
    @given(event_lists(max_events=12), configs)
    def test_event_major_agrees_with_partial_major(self, events, config):
        n_events, delta_c, delta_w, max_nodes = config
        if n_events < 2:
            n_events = 2
        constraints = _constraints(delta_c, delta_w)
        graph = TemporalGraph(events)
        plan = compile_plan(
            n_events, constraints, None, graph.storage, max_nodes=max_nodes
        )
        partials = _prefix_partials(graph, 1, constraints, max_nodes)
        kernel = plan.bind(graph.storage)
        m = len(graph)
        whole = kernel.extend_frontier(partials, 0, m)
        # One event at a time (the online push shape): same pairs, same
        # node tuples, grouped by event instead of by partial.
        stitched = [
            triple
            for idx in range(m)
            for triple in kernel.extend_frontier(partials, idx, idx + 1)
        ]
        assert sorted(stitched) == sorted(whole)

    @requires_numpy_backend
    @pytest.mark.parametrize("max_nodes", [1, 2])
    @pytest.mark.parametrize("n_events", [2, 3])
    def test_numpy_kernel_survives_degenerate_node_caps(self, n_events, max_nodes):
        # A root always carries two nodes, so max_nodes=1 partials exceed
        # the cap from the start; the scalar rule still admits extensions
        # that introduce no node, and the vectorized pad must be sized by
        # the partials, not the cap.
        from repro.algorithms.counting import count_motifs

        events = [(0, 1, 1.0), (1, 0, 2.0), (0, 1, 2.5), (1, 2, 3.0), (0, 1, 4.0)]
        constraints = TimingConstraints.only_w(10.0)
        reference = count_motifs(
            TemporalGraph(events, backend="list"),
            n_events,
            constraints,
            max_nodes=max_nodes,
        )
        vectorized = count_motifs(
            TemporalGraph(events, backend="numpy"),
            n_events,
            constraints,
            max_nodes=max_nodes,
        )
        assert vectorized == reference
        assert list(vectorized) == list(reference)

    @requires_numpy_backend
    def test_numpy_kernel_falls_back_while_tail_pending(self):
        graph = TemporalGraph([(0, 1, 1.0), (1, 2, 2.0)], backend="numpy")
        graph.append(Event(0, 2, 3.0))  # lands in the un-banded tail
        constraints = TimingConstraints.only_w(10.0)
        plan = compile_plan(3, constraints, None, graph.storage)
        partials = _prefix_partials(graph, 1, constraints, None)
        kernel = plan.bind(graph.storage)
        generic = compile_plan(
            3, constraints, None, graph.storage, kernel="generic"
        ).bind(graph.storage)
        m = len(graph)
        assert kernel.extend_frontier(partials, 0, m) == (
            generic.extend_frontier(partials, 0, m)
        )


# ----------------------------------------------------------------------
# native (JIT) kernel differential: same contract, third implementation
# ----------------------------------------------------------------------
@requires_numpy_backend
class TestNativeKernelParity:
    @settings(max_examples=60, deadline=None)
    @given(event_lists(), configs, st.integers(1, 3))
    def test_native_kernel_matches_generic_and_numpy(self, events, config, j):
        n_events, delta_c, delta_w, max_nodes = config
        if j >= n_events:
            j = n_events - 1 or 1
        constraints = _constraints(delta_c, delta_w)
        with registered_native():
            graph = TemporalGraph(events, backend="numpy")
            partials = _prefix_partials(graph, j, constraints, max_nodes)
            kernels = {}
            for name in ("generic", "numpy", "native"):
                kernels[name] = compile_plan(
                    n_events,
                    constraints,
                    None,
                    graph.storage,
                    max_nodes=max_nodes,
                    kernel=name,
                ).bind(graph.storage)
            assert kernels["native"].kernel_name == "native"
            m = len(graph)
            reference = kernels["generic"].extend_frontier(partials, 0, m)
            assert kernels["numpy"].extend_frontier(partials, 0, m) == reference
            assert kernels["native"].extend_frontier(partials, 0, m) == reference
            # Event-major stitching (the online push shape): one event at
            # a time covers the same admissible pairs.
            stitched = [
                triple
                for idx in range(m)
                for triple in kernels["native"].extend_frontier(partials, idx, idx + 1)
            ]
            assert sorted(stitched) == sorted(reference)

    @settings(max_examples=50, deadline=None)
    @given(event_lists(), configs)
    def test_native_run_plan_and_census_bit_identical(self, events, config):
        n_events, delta_c, delta_w, max_nodes = config
        constraints = _constraints(delta_c, delta_w)
        with registered_native():
            graph = TemporalGraph(events, backend="numpy")
            generic_plan = compile_plan(
                n_events,
                constraints,
                None,
                graph.storage,
                max_nodes=max_nodes,
                kernel="generic",
            )
            native_plan = compile_plan(
                n_events, constraints, None, graph.storage, max_nodes=max_nodes
            )
            assert native_plan.kernel_name == "native"
            assert list(run_plan(native_plan, graph)) == list(
                run_plan(generic_plan, graph)
            )
            reference = run_census(
                graph, n_events, constraints, max_nodes=max_nodes, plan=generic_plan
            )
            native = run_census(
                graph, n_events, constraints, max_nodes=max_nodes, plan=native_plan
            )
            assert _census_key(native) == _census_key(reference)

    @settings(max_examples=25, deadline=None)
    @given(event_lists(max_events=14), configs, st.sampled_from([3.0, 7.0, 15.0]))
    def test_online_push_parity_under_native_kernel(self, events, config, window):
        n_events, delta_c, delta_w, max_nodes = config
        constraints = _constraints(delta_c, delta_w)
        with registered_native():
            engine = OnlineCensus(
                n_events,
                constraints,
                window,
                max_nodes=max_nodes,
                backend="numpy",
                prune_every=5,
            )
            twin = OnlineCensus(
                n_events,
                constraints,
                window,
                max_nodes=max_nodes,
                backend="list",
                prune_every=5,
            )
            for event in events:
                assert engine.push(event) == twin.push(event)
            assert engine.counts() == twin.counts()
            assert list(engine.counts()) == list(twin.counts())


# ----------------------------------------------------------------------
# consumer bit-identity
# ----------------------------------------------------------------------
def _census_key(census):
    """Everything bit-identity covers: values *and* counter key order."""
    return (
        dict(census.code_counts),
        list(census.code_counts),
        dict(census.pair_counts),
        list(census.pair_counts),
        dict(census.pair_sequence_counts),
        list(census.pair_sequence_counts),
        census.total,
    )


class TestConsumerParity:
    @settings(max_examples=50, deadline=None)
    @given(event_lists(), configs)
    def test_run_census_identical_across_backends_and_kernels(self, events, config):
        n_events, delta_c, delta_w, max_nodes = config
        constraints = _constraints(delta_c, delta_w)
        reference = None
        for backend in BACKENDS:
            graph = TemporalGraph(events, backend=backend)
            census = run_census(graph, n_events, constraints, max_nodes=max_nodes)
            forced = run_census(
                graph,
                n_events,
                constraints,
                max_nodes=max_nodes,
                plan=compile_plan(
                    n_events,
                    constraints,
                    None,
                    graph.storage,
                    max_nodes=max_nodes,
                    kernel="generic",
                ),
            )
            assert _census_key(forced) == _census_key(census)
            if reference is None:
                reference = _census_key(census)
            else:
                assert _census_key(census) == reference

    @settings(max_examples=40, deadline=None)
    @given(event_lists(max_events=10), configs)
    def test_enumeration_matches_brute_force_oracle(self, events, config):
        n_events, delta_c, delta_w, max_nodes = config
        constraints = _constraints(delta_c, delta_w)
        graph = TemporalGraph(events)
        expected = [
            inst
            for inst in combinations(range(len(graph)), n_events)
            if is_instance(graph, inst, constraints, max_nodes=max_nodes)
        ]
        found = list(
            enumerate_instances(graph, n_events, constraints, max_nodes=max_nodes)
        )
        assert sorted(found) == expected
        assert len(set(found)) == len(found)

    def test_run_plan_respects_roots_and_max_instances(self):
        graph = TemporalGraph(
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 3, 4.0), (3, 0, 5.0)]
        )
        constraints = TimingConstraints.only_w(10.0)
        plan = compile_plan(2, constraints, None, graph.storage)
        everything = list(run_plan(plan, graph))
        rooted = list(run_plan(plan, graph, roots=[1, 3]))
        assert rooted == [inst for inst in everything if inst[0] in (1, 3)]
        capped = list(run_plan(plan, graph, max_instances=3))
        assert capped == everything[:3]

    def test_explicit_plan_survives_the_parallel_path(self, monkeypatch):
        # A caller-supplied plan (forced kernel, precompiled reuse) must
        # ship to shard workers, not be silently recompiled away when
        # jobs resolve > 1 via argument, session default or REPRO_JOBS.
        import repro.parallel.engine as parallel_engine

        events = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 3, 4.0), (1, 3, 5.0)]
        constraints = TimingConstraints(delta_c=2.0, delta_w=6.0)
        graph = TemporalGraph(events)
        forced = compile_plan(
            3, constraints, None, graph.storage, max_nodes=3, kernel="generic"
        )
        serial = run_census(graph, 3, constraints, max_nodes=3, plan=forced)

        def no_recompile(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("parallel path recompiled a caller-supplied plan")

        monkeypatch.setattr(parallel_engine, "compile_plan", no_recompile)
        sharded = run_census(graph, 3, constraints, max_nodes=3, plan=forced, jobs=2)
        assert _census_key(sharded) == _census_key(serial)

    def test_explicit_plan_survives_parallel_enumeration(self):
        # The jobs>1 branch of enumerate_instances must honor the plan's
        # own predicate/node cap rather than the bare arguments.
        events = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 3, 4.0), (1, 3, 5.0)]
        constraints = TimingConstraints(delta_c=2.0, delta_w=6.0)
        graph = TemporalGraph(events)
        plan = compile_plan(
            3, constraints, satisfies_consecutive_events, graph.storage, max_nodes=3
        )
        serial = list(enumerate_instances(graph, 3, constraints, plan=plan))
        sharded = list(enumerate_instances(graph, 3, constraints, plan=plan, jobs=2))
        assert sharded == serial

    def test_parallel_api_rejects_unsorted_roots(self):
        from repro.parallel import parallel_count_motifs

        graph = TemporalGraph([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        constraints = TimingConstraints.only_w(10.0)
        with pytest.raises(ValueError, match="non-decreasing roots"):
            parallel_count_motifs(graph, 2, constraints, roots=[2, 0], jobs=2)

    def test_precompiled_plan_reused_across_graphs(self):
        constraints = TimingConstraints(delta_c=2.0, delta_w=6.0)
        plan = compile_plan(3, constraints, max_nodes=3)
        for events in (
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)],
            [(3, 4, 0.0), (4, 5, 1.0), (3, 5, 1.5), (5, 3, 2.0)],
        ):
            graph = TemporalGraph(events)
            assert _census_key(
                run_census(graph, 3, constraints, max_nodes=3, plan=plan)
            ) == _census_key(run_census(graph, 3, constraints, max_nodes=3))

    @settings(max_examples=30, deadline=None)
    @given(event_lists(max_events=16), configs, st.sampled_from([3.0, 7.0, 15.0]))
    def test_online_census_matches_batch_window_after_every_push(
        self, events, config, window
    ):
        n_events, delta_c, delta_w, max_nodes = config
        constraints = _constraints(delta_c, delta_w)
        engine = OnlineCensus(
            n_events, constraints, window, max_nodes=max_nodes, prune_every=5
        )
        for count, event in enumerate(events, start=1):
            engine.push(event)
            window_graph = TemporalGraph(
                [e for e in events[:count] if e.t >= event.t - window]
            )
            batch = run_census(
                window_graph, n_events, constraints, max_nodes=max_nodes
            )
            assert engine.counts() == batch.code_counts
            assert engine.live_instances == batch.total

    def test_online_restore_regrows_through_engine(self, tmp_path):
        pytest.importorskip("numpy")
        constraints = TimingConstraints(delta_c=2.0, delta_w=6.0)
        events = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 3, 3.0)]
        events += [(3, 0, 4.5), (1, 3, 5.0), (0, 1, 6.0), (2, 0, 6.0)]
        twin = OnlineCensus(3, constraints, 5.0, max_nodes=3)
        engine = OnlineCensus(3, constraints, 5.0, max_nodes=3)
        for event in events[:5]:
            engine.push(event)
            twin.push(event)
        engine.snapshot(tmp_path / "ckpt")
        resumed = OnlineCensus.restore(tmp_path / "ckpt")
        for event in events[5:]:
            assert resumed.push(event) == twin.push(event)
        assert resumed.counts() == twin.counts()
        assert resumed.census().pair_sequence_counts == (
            twin.census().pair_sequence_counts
        )


# ----------------------------------------------------------------------
# counter-merge dedup (satellite): one implementation, pinned key order
# ----------------------------------------------------------------------
class TestMergeDedup:
    def test_merge_counts_is_merge_counters(self):
        from repro.algorithms.counting import merge_counters
        from repro.parallel import merge_counts
        from repro.parallel.merge import merge_counts as merge_counts_module

        assert merge_counts is merge_counters
        assert merge_counts_module is merge_counters

    def test_merge_preserves_first_appearance_key_order(self):
        from repro.algorithms.counting import merge_counters

        merged = merge_counters(
            [
                Counter({"0110": 2, "0101": 1}),
                Counter({"0102": 4, "0110": 1}),
                Counter({"0101": 5, "0121": 1}),
            ]
        )
        assert list(merged) == ["0110", "0101", "0102", "0121"]
        assert merged == Counter({"0110": 3, "0101": 6, "0102": 4, "0121": 1})
