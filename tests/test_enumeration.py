"""Tests for the enumeration engine, including a brute-force oracle."""

import itertools

import pytest

from repro.algorithms.enumeration import (
    enumerate_instances,
    instance_code,
    instance_nodes,
    instance_times,
    instance_timespan,
    is_instance,
)
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph


def brute_force(graph, n_events, constraints, max_nodes=None):
    """Oracle: test every index combination against the instance definition."""
    out = set()
    for combo in itertools.combinations(range(len(graph)), n_events):
        if is_instance(graph, combo, constraints, max_nodes=max_nodes):
            out.add(combo)
    return out


class TestBasics:
    def test_triangle_single_instance(self, triangle_graph, loose):
        found = list(enumerate_instances(triangle_graph, 3, loose))
        assert found == [(0, 1, 2)]
        assert instance_code(triangle_graph, found[0]) == "011202"

    def test_single_event_instances(self, triangle_graph, loose):
        assert list(enumerate_instances(triangle_graph, 1, loose)) == [
            (0,),
            (1,),
            (2,),
        ]

    def test_two_event_instances(self, triangle_graph, loose):
        found = set(enumerate_instances(triangle_graph, 2, loose))
        assert found == {(0, 1), (0, 2), (1, 2)}

    def test_rejects_nonpositive_n_events(self, triangle_graph, loose):
        with pytest.raises(ValueError):
            list(enumerate_instances(triangle_graph, 0, loose))

    def test_empty_graph(self, loose):
        g = TemporalGraph([])
        assert list(enumerate_instances(g, 3, loose)) == []


class TestTimingPruning:
    def test_delta_c_prunes_wide_gaps(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 2, 100), (0, 2, 110)])
        tight = TimingConstraints.only_c(50)
        assert list(enumerate_instances(g, 3, tight)) == []
        wide = TimingConstraints.only_c(100)
        assert list(enumerate_instances(g, 3, wide)) == [(0, 1, 2)]

    def test_delta_w_prunes_long_spans(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 2, 6), (0, 2, 12)])
        assert list(enumerate_instances(g, 3, TimingConstraints.only_w(10))) == []
        assert list(enumerate_instances(g, 3, TimingConstraints.only_w(12))) == [
            (0, 1, 2)
        ]

    def test_section_45_example(self):
        """Timestamps 1, 9, 10: valid under ΔW=10, invalid under ΔC=5."""
        g = TemporalGraph.from_tuples([(0, 1, 1), (1, 2, 9), (2, 0, 10)])
        assert list(enumerate_instances(g, 3, TimingConstraints.only_w(10)))
        assert not list(enumerate_instances(g, 3, TimingConstraints.only_c(5)))


class TestOrderingAndGrowth:
    def test_same_timestamp_events_never_share_a_motif(self):
        g = TemporalGraph.from_tuples([(0, 1, 5), (1, 2, 5)])
        loose = TimingConstraints(delta_c=100, delta_w=100)
        assert list(enumerate_instances(g, 2, loose)) == []

    def test_disconnected_events_never_share_a_motif(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (2, 3, 5)])
        loose = TimingConstraints(delta_c=100, delta_w=100)
        assert list(enumerate_instances(g, 2, loose)) == []

    def test_growth_may_attach_to_any_seen_node(self):
        # third event shares only the *first* event's node.
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 2, 5), (0, 3, 10)])
        loose = TimingConstraints(delta_c=100, delta_w=100)
        assert (0, 1, 2) in set(enumerate_instances(g, 3, loose))

    def test_max_nodes_prunes(self, star_graph, loose):
        all_three = list(enumerate_instances(star_graph, 3, loose))
        limited = list(enumerate_instances(star_graph, 3, loose, max_nodes=3))
        assert len(all_three) == 4  # C(4,2)... star: any 3 of 4 events in order
        assert limited == []        # every 3-event star subset needs 4 nodes

    def test_max_instances_caps_output(self, star_graph, loose):
        capped = list(enumerate_instances(star_graph, 2, loose, max_instances=2))
        assert len(capped) == 2

    def test_roots_restriction(self, star_graph, loose):
        rooted = set(enumerate_instances(star_graph, 2, loose, roots=[0]))
        assert rooted == {(0, 1), (0, 2), (0, 3)}


class TestPredicate:
    def test_predicate_filters(self, conversation_graph, loose):
        everything = list(enumerate_instances(conversation_graph, 2, loose))
        nothing = list(
            enumerate_instances(
                conversation_graph, 2, loose, predicate=lambda g, inst: False
            )
        )
        assert everything and not nothing

    def test_predicate_sees_full_instance(self, triangle_graph, loose):
        seen = []
        list(
            enumerate_instances(
                triangle_graph,
                3,
                loose,
                predicate=lambda g, inst: seen.append(inst) or True,
            )
        )
        assert seen == [(0, 1, 2)]


class TestAgainstBruteForce:
    """The engine must agree exactly with the definitional oracle."""

    @pytest.mark.parametrize("n_events", [2, 3, 4])
    def test_small_dense_graph(self, n_events):
        g = TemporalGraph.from_tuples(
            [
                (0, 1, 0),
                (1, 2, 3),
                (2, 0, 5),
                (0, 1, 8),
                (1, 0, 9),
                (2, 3, 11),
                (3, 0, 14),
                (0, 2, 15),
                (1, 3, 17),
                (3, 1, 20),
            ]
        )
        constraints = TimingConstraints(delta_c=6, delta_w=15)
        fast = set(enumerate_instances(g, n_events, constraints))
        assert fast == brute_force(g, n_events, constraints)

    @pytest.mark.parametrize("max_nodes", [2, 3, 4])
    def test_node_caps(self, max_nodes):
        g = TemporalGraph.from_tuples(
            [(0, 1, 0), (1, 2, 2), (0, 1, 4), (2, 3, 6), (1, 0, 8), (3, 1, 10)]
        )
        constraints = TimingConstraints(delta_c=5, delta_w=12)
        fast = set(enumerate_instances(g, 3, constraints, max_nodes=max_nodes))
        assert fast == brute_force(g, 3, constraints, max_nodes=max_nodes)

    def test_only_c_and_only_w_configs(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, 0), (1, 2, 4), (2, 1, 7), (1, 0, 9), (0, 2, 13)]
        )
        for constraints in (
            TimingConstraints.only_c(5),
            TimingConstraints.only_w(10),
            TimingConstraints(delta_c=4, delta_w=9),
        ):
            fast = set(enumerate_instances(g, 3, constraints))
            assert fast == brute_force(g, 3, constraints), constraints

    def test_dataset_sample(self, small_sms):
        g = small_sms.head(150)
        constraints = TimingConstraints(delta_c=600, delta_w=1200)
        fast = set(enumerate_instances(g, 3, constraints, max_nodes=3))
        assert fast == brute_force(g, 3, constraints, max_nodes=3)


class TestInstanceHelpers:
    def test_instance_times(self, triangle_graph):
        assert instance_times(triangle_graph, (0, 2)) == (10, 25)

    def test_instance_nodes(self, triangle_graph):
        assert instance_nodes(triangle_graph, (0, 1)) == {0, 1, 2}

    def test_instance_timespan(self, triangle_graph):
        assert instance_timespan(triangle_graph, (0, 1, 2)) == 15

    def test_is_instance_rejects_unordered(self, triangle_graph, loose):
        assert not is_instance(triangle_graph, (2, 0), loose)

    def test_is_instance_rejects_empty(self, triangle_graph, loose):
        assert not is_instance(triangle_graph, (), loose)
