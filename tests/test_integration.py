"""Cross-module integration tests.

These wire several subsystems together the way downstream users would and
check the global consistency relations between them.
"""

import pytest

from repro.algorithms.components import temporal_components
from repro.algorithms.counting import count_motifs, run_census
from repro.algorithms.restrictions import (
    combine,
    is_static_induced,
    satisfies_cdg,
    satisfies_consecutive_events,
)
from repro.analysis.burstiness import graph_burstiness
from repro.core.colored import count_colored_motifs, group_by_structure
from repro.core.constraints import TimingConstraints
from repro.core.motif import Motif, node_motif_profiles
from repro.core.snapshots import resolution_collision_rate
from repro.models import HulovatyyModel, KovanenModel, ParanjapeModel, SongModel

CONSTRAINTS = TimingConstraints(delta_c=600, delta_w=1200)


class TestModelsVsFilters:
    """Model.count must equal enumerator + the model's restriction filter."""

    def test_kovanen_equals_consecutive_filter(self, small_sms):
        model_counts = KovanenModel(600).count(small_sms, 3, max_nodes=3)
        filter_counts = count_motifs(
            small_sms,
            3,
            TimingConstraints.only_c(600),
            max_nodes=3,
            predicate=satisfies_consecutive_events,
        )
        assert model_counts == filter_counts

    def test_song_equals_plain_window_counts(self, small_sms):
        model_counts = SongModel(1200).count(small_sms, 3, max_nodes=3)
        plain = count_motifs(
            small_sms, 3, TimingConstraints.only_w(1200), max_nodes=3
        )
        assert model_counts == plain

    def test_paranjape_equals_inducedness_filter(self, small_sms):
        model_counts = ParanjapeModel(1200).count(small_sms, 3, max_nodes=3)
        filter_counts = count_motifs(
            small_sms,
            3,
            TimingConstraints.only_w(1200),
            max_nodes=3,
            predicate=is_static_induced,
        )
        assert model_counts == filter_counts

    def test_constrained_hulovatyy_equals_combined_filter(self, small_sms):
        model_counts = HulovatyyModel(600, constrained=True).count(
            small_sms, 3, max_nodes=3
        )
        filter_counts = count_motifs(
            small_sms,
            3,
            TimingConstraints.only_c(600),
            max_nodes=3,
            predicate=combine(is_static_induced, satisfies_cdg),
        )
        assert model_counts == filter_counts


class TestCensusConsistency:
    def test_census_internal_relations(self, small_email):
        census = run_census(small_email, 3, CONSTRAINTS, max_nodes=3)
        assert census.total == sum(census.code_counts.values())
        assert census.total == sum(census.pair_sequence_counts.values())
        assert sum(census.pair_counts.values()) == 2 * census.total
        assert sum(census.pair_group_counts().values()) == census.total

    def test_motif_objects_agree_with_census(self, small_email):
        census = run_census(small_email, 3, CONSTRAINTS, max_nodes=3)
        top_code = max(census.code_counts, key=census.code_counts.get)
        assert Motif(top_code).count(small_email, CONSTRAINTS) == (
            census.code_counts[top_code]
        )

    def test_orbit_profiles_agree_with_census(self, small_email):
        census = run_census(small_email, 3, CONSTRAINTS, max_nodes=3)
        profiles = node_motif_profiles(small_email, 3, CONSTRAINTS, max_nodes=3)
        # per code: summing any single orbit over all nodes = code count
        recovered = {}
        for profile in profiles.values():
            for (code, orbit), n in profile.items():
                if orbit == 0:
                    recovered[code] = recovered.get(code, 0) + n
        assert recovered == dict(census.code_counts)

    def test_colored_counts_refine_plain_counts(self, small_email):
        coloring = {node: node % 3 for node in small_email.nodes}
        colored = count_colored_motifs(
            small_email, 3, CONSTRAINTS, coloring, max_nodes=3
        )
        plain = count_motifs(small_email, 3, CONSTRAINTS, max_nodes=3)
        regrouped = group_by_structure(colored)
        assert {c: sum(v.values()) for c, v in regrouped.items()} == dict(plain)


class TestComponentsVsCounts:
    def test_only_c_motifs_span_few_components(self, small_sms):
        """An only-ΔC motif's *consecutive same-node* events are within ΔC,
        so most instances concentrate inside bursts: the number of distinct
        components touched is small relative to motif count."""
        g = small_sms.head(500)
        comps = temporal_components(g, delta_c=600)
        biggest = max(len(c) for c in comps)
        assert biggest >= 3  # bursts exist at all

    def test_burstiness_and_collision_coherence(self, small_sms, small_bitcoin):
        """Burstier, denser traffic loses more orderings when degraded."""
        assert graph_burstiness(small_sms) > 0
        assert resolution_collision_rate(
            small_sms, 300
        ) >= resolution_collision_rate(small_bitcoin, 300)


class TestEndToEndPipeline:
    def test_generate_count_analyze_roundtrip(self, tmp_path):
        pytest.importorskip("numpy", reason="graph synthesis is numpy-seeded")
        """The full user journey: generate → save → load → count → analyze."""
        from repro.analysis.pairseq import pair_sequence_matrix
        from repro.analysis.rankings import top_k
        from repro.datasets.io import read_event_list, write_event_list
        from repro.datasets.registry import get_dataset

        graph = get_dataset("college-msg", scale=0.1)
        path = tmp_path / "college.txt"
        write_event_list(graph, path)
        loaded = read_event_list(path)
        assert loaded.events == graph.events

        census = run_census(loaded, 3, CONSTRAINTS, max_nodes=3)
        matrix = pair_sequence_matrix(census.pair_sequence_counts)
        assert matrix.sum() == census.total
        if census.total:
            top = top_k(census.code_counts, 1)
            assert top[0][1] >= 1
