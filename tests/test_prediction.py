"""Tests for event-pair-based next-event prediction."""

import pytest

np = pytest.importorskip("numpy")

from repro.core.eventpairs import ALL_PAIR_TYPES, PairType
from repro.core.temporal_graph import TemporalGraph
from repro.prediction.pairs import (
    PairTransitionModel,
    evaluate_pair_prediction,
    pair_transitions,
)


@pytest.fixture
def volley_graph() -> TemporalGraph:
    """Strict ping-pong chains: P always follows P."""
    events = []
    t = 0.0
    for _ in range(30):
        events.append((0, 1, t))
        events.append((1, 0, t + 5))
        t += 10
    return TemporalGraph.from_tuples(events)


class TestPairTransitions:
    def test_volley_graph_transitions_all_ping_pong(self, volley_graph):
        transitions = list(pair_transitions(volley_graph, horizon=100))
        assert transitions
        assert all(
            a is PairType.PING_PONG and b is PairType.PING_PONG
            for a, b in transitions
        )

    def test_horizon_limits_successors(self, volley_graph):
        assert list(pair_transitions(volley_graph, horizon=1)) == []

    def test_convey_chain_transitions(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 2, 5), (2, 3, 9)])
        transitions = list(pair_transitions(g, horizon=100))
        assert (PairType.CONVEY, PairType.CONVEY) in transitions


class TestModel:
    def test_rejects_negative_smoothing(self):
        with pytest.raises(ValueError):
            PairTransitionModel(smoothing=-1)

    def test_transition_matrix_row_stochastic(self, volley_graph):
        model = PairTransitionModel().fit(volley_graph, horizon=100)
        matrix = model.transition_matrix()
        assert matrix.shape == (6, 6)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_learns_dominant_transition(self, volley_graph):
        model = PairTransitionModel(smoothing=0.1).fit(volley_graph, horizon=100)
        assert model.predict_type(PairType.PING_PONG) is PairType.PING_PONG

    def test_marginal_prediction_cold_start(self, volley_graph):
        model = PairTransitionModel(smoothing=0.1).fit(volley_graph, horizon=100)
        assert model.predict_type(None) is PairType.PING_PONG

    def test_distributions_sum_to_one(self, volley_graph):
        model = PairTransitionModel().fit(volley_graph, horizon=100)
        for current in list(ALL_PAIR_TYPES) + [None]:
            dist = model.next_type_distribution(current)
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_untrained_model_is_uniform(self):
        model = PairTransitionModel()
        dist = model.next_type_distribution(PairType.REPETITION)
        assert all(p == pytest.approx(1 / 6) for p in dist.values())


class TestEventPrediction:
    def test_shapes_pin_the_right_endpoints(self, volley_graph):
        from repro.core.events import Event

        model = PairTransitionModel(smoothing=0.1).fit(volley_graph, horizon=100)
        last = Event(4, 9, 100.0)
        predictions = model.predict_events(last, PairType.PING_PONG, top=6)
        by_type = {p.pair_type: p for p in predictions}
        assert (by_type[PairType.PING_PONG].source,
                by_type[PairType.PING_PONG].target) == (9, 4)
        assert (by_type[PairType.REPETITION].source,
                by_type[PairType.REPETITION].target) == (4, 9)
        assert by_type[PairType.OUT_BURST].source == 4
        assert by_type[PairType.OUT_BURST].target is None
        assert by_type[PairType.CONVEY].source == 9
        assert by_type[PairType.IN_BURST].target == 9
        assert by_type[PairType.WEAKLY_CONNECTED].target == 4

    def test_top_ranked_first(self, volley_graph):
        from repro.core.events import Event

        model = PairTransitionModel(smoothing=0.1).fit(volley_graph, horizon=100)
        predictions = model.predict_events(Event(0, 1, 0.0), PairType.PING_PONG)
        assert predictions[0].pair_type is PairType.PING_PONG
        probs = [p.probability for p in predictions]
        assert probs == sorted(probs, reverse=True)


class TestEvaluation:
    def test_rejects_bad_fraction(self, volley_graph):
        with pytest.raises(ValueError):
            evaluate_pair_prediction(volley_graph, horizon=100, train_fraction=1.5)

    def test_perfectly_predictable_graph(self, volley_graph):
        scores = evaluate_pair_prediction(volley_graph, horizon=100)
        assert scores["n_test"] > 0
        assert scores["accuracy"] == 1.0

    def test_beats_random_on_real_data(self, small_sms):
        scores = evaluate_pair_prediction(small_sms, horizon=900)
        assert scores["n_test"] > 50
        assert scores["accuracy"] > scores["random"]
        # the learned model should not lose to its own marginal baseline
        assert scores["accuracy"] >= scores["baseline"] - 0.02

    def test_empty_test_set(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 0, 5), (0, 1, 9)])
        scores = evaluate_pair_prediction(g, horizon=1, train_fraction=0.7)
        assert scores["n_test"] == 0
        assert scores["accuracy"] == 0.0
