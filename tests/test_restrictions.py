"""Tests for the temporal-inducedness restriction predicates."""

import pytest

from repro.algorithms.restrictions import (
    combine,
    is_static_induced,
    satisfies_cdg,
    satisfies_consecutive_events,
)
from repro.core.temporal_graph import TemporalGraph


class TestConsecutiveEvents:
    def test_uninterrupted_motif_passes(self, triangle_graph):
        assert satisfies_consecutive_events(triangle_graph, (0, 1, 2))

    def test_paper_section_41_example(self):
        """Motif (u,v,5), (v,w,8), (u,v,12): no event may touch u or v inside
        [5, 12]."""
        base = [(0, 1, 5), (1, 2, 8), (0, 1, 12)]
        clean = TemporalGraph.from_tuples(base)
        assert satisfies_consecutive_events(clean, (0, 1, 2))

        # an event touching u=0 inside the window breaks it
        dirty = TemporalGraph.from_tuples(base + [(0, 3, 9)])
        motif = tuple(
            i for i, ev in enumerate(dirty.events) if ev.edge != (0, 3)
        )
        assert not satisfies_consecutive_events(dirty, motif)

    def test_interruption_of_any_member_breaks(self, conversation_graph):
        # motif (0→1@10, 1→0@20, 0→1@30): node 0 touches 0→2@25 inside.
        assert not satisfies_consecutive_events(conversation_graph, (0, 1, 3))

    def test_interruption_outside_window_is_fine(self, conversation_graph):
        # motif (0→1@30, 1→0@40): the 0→2@25 event is before the window.
        assert satisfies_consecutive_events(conversation_graph, (3, 4))

    def test_boundary_event_counts_as_interruption(self):
        g = TemporalGraph.from_tuples([(0, 1, 5), (0, 2, 5), (1, 0, 9)])
        # motif (0→1@5, 1→0@9): node 0 also touches (0,2) at exactly t=5.
        motif = tuple(i for i, ev in enumerate(g.events) if ev.edge != (0, 2))
        assert not satisfies_consecutive_events(g, motif)

    def test_single_event_always_passes(self, star_graph):
        assert satisfies_consecutive_events(star_graph, (1,))

    def test_star_burst_filtered(self, star_graph):
        # hub's events at 10,12,14,16: motif of events 0 and 2 skips event 1.
        assert not satisfies_consecutive_events(star_graph, (0, 2))
        assert satisfies_consecutive_events(star_graph, (0, 1))


class TestCDG:
    def test_repetitions_exempt(self, conversation_graph):
        # consecutive motif events on the same edge never violate CDG.
        g = TemporalGraph.from_tuples([(0, 1, 0), (0, 1, 5), (0, 1, 9)])
        assert satisfies_cdg(g, (0, 1, 2))

    def test_stale_edge_breaks(self, repeated_edge_graph):
        # motif (0→1@0, 2→3@15): edge (2,3) already fired at t=5 in between.
        assert not satisfies_cdg(repeated_edge_graph, (0, 3))

    def test_fresh_edge_passes(self, repeated_edge_graph):
        # motif (0→1@0, 2→3@5): first occurrence of (2,3) since t=0.
        assert satisfies_cdg(repeated_edge_graph, (0, 1))

    def test_paper_formal_statement(self):
        """Events (u1,v1,t1), (u2,v2,t2) consecutive with different edges:
        no (u2,v2,t') may exist with t1 <= t' <= t2."""
        g = TemporalGraph.from_tuples(
            [(0, 1, 10), (1, 2, 12), (1, 2, 20), (0, 2, 25)]
        )
        # motif (0→1@10, 1→2@20): (1,2) occurred at 12 in between -> stale.
        assert not satisfies_cdg(g, (0, 2))
        # motif (0→1@10, 1→2@12): fresh.
        assert satisfies_cdg(g, (0, 1))

    def test_boundary_occurrence_at_t1_counts(self):
        g = TemporalGraph.from_tuples([(1, 2, 10), (0, 1, 10), (1, 2, 15)])
        # motif (0→1@10, 1→2@15): edge (1,2) also fired at exactly t=10.
        motif = (
            [i for i, ev in enumerate(g.events) if ev.edge == (0, 1)][0],
            [i for i, ev in enumerate(g.events) if ev.t == 15][0],
        )
        assert not satisfies_cdg(g, motif)

    def test_single_event_passes(self, star_graph):
        assert satisfies_cdg(star_graph, (2,))


class TestStaticInducedness:
    def test_triangle_covering_all_edges(self, triangle_graph):
        assert is_static_induced(triangle_graph, (0, 1, 2))
        assert is_static_induced(triangle_graph, (0, 1, 2), scope="global")

    def test_missing_diagonal_breaks_global(self):
        """The paper's square example: a diagonal among the motif's nodes."""
        g = TemporalGraph.from_tuples(
            [(0, 1, 0), (1, 2, 5), (2, 3, 10), (0, 3, 15), (0, 2, 100)]
        )
        square = (0, 1, 2, 3)
        # diagonal (0,2) exists in the static projection -> global fails...
        assert not is_static_induced(g, square, scope="global")
        # ...but it is outside the window [0, 15], so window scope passes.
        assert is_static_induced(g, square, scope="window")

    def test_skipped_event_on_covered_edge_ok(self):
        """Hulovatyy's Section 4.1 example: (a,b,2),(b,c,4),(c,a,5),(c,a,6) —
        the triangle of events 1, 2, 4 is valid (3rd event's edge is used)."""
        g = TemporalGraph.from_tuples(
            [(0, 1, 2), (1, 2, 4), (2, 0, 5), (2, 0, 6)]
        )
        assert is_static_induced(g, (0, 1, 3), scope="window")
        assert is_static_induced(g, (0, 1, 3), scope="global")

    def test_skipped_event_on_uncovered_edge_breaks(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, 2), (1, 2, 4), (1, 0, 5), (2, 0, 6)]
        )
        # motif of events (0,1,3) skips (1,0,5) whose edge is NOT in the motif.
        assert not is_static_induced(g, (0, 1, 3), scope="window")

    def test_direction_matters(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 0, 5), (0, 1, 9)])
        # motif (0→1@0, 0→1@9) skips the reversed edge (1,0) inside window.
        assert not is_static_induced(g, (0, 2), scope="window")

    def test_unknown_scope_raises(self, triangle_graph):
        with pytest.raises(ValueError):
            is_static_induced(triangle_graph, (0, 1, 2), scope="bogus")


class TestCombine:
    def test_combined_predicate(self, triangle_graph):
        both = combine(satisfies_consecutive_events, satisfies_cdg)
        assert both(triangle_graph, (0, 1, 2))

    def test_combined_fails_when_any_fails(self, star_graph):
        both = combine(satisfies_cdg, satisfies_consecutive_events)
        assert not both(star_graph, (0, 2))  # consecutive restriction broken
