"""NumPy backend specifics: page persistence, mmap loads, vectorized kernels.

Cross-backend answer parity is covered by the randomized suite in
``test_storage.py`` (``"numpy"`` sits in its ``BACKENDS``); this module
tests what is unique to the tensor engine — the ``.npy`` page directory
layout, memory-mapped loads (including append-after-load), zero-copy
slicing, and the batched query seams the enumeration fast path and the
benchmark sweep rely on.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

np = pytest.importorskip("numpy")

from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.generators import ActivityConfig, generate
from repro.storage import ListStorage, NumpyStorage
from repro.storage.numpy_backend import PAGE_FORMAT, PAGE_VERSION, load_pages, page_meta

EVENTS = [(0, 1, 10), (1, 2, 20), (0, 1, 30), (2, 0, 40), (1, 2, 40)]


@pytest.fixture(scope="module")
def events():
    """A mechanism-rich generated stream with same-timestamp bursts."""
    config = ActivityConfig(
        n_nodes=40,
        n_events=300,
        timespan=30_000.0,
        p_reply=0.4,
        p_repeat=0.3,
        p_cc=0.3,
        p_forward=0.25,
        p_in_burst=0.2,
        cc_same_timestamp=True,
        reaction_mean=60.0,
    )
    return generate(config, seed=77).events


@pytest.fixture
def storage(events) -> NumpyStorage:
    return NumpyStorage.from_events(events, presorted=True)


@pytest.fixture
def pages(tmp_path, storage) -> str:
    path = os.fspath(tmp_path / "graph-pages")
    storage.save(path, name="paged")
    return path


class TestColumns:
    def test_columns_are_contiguous_ndarrays(self, storage):
        assert storage._u.dtype == np.int64
        assert storage._v.dtype == np.int64
        assert storage._t.dtype == np.float64
        assert storage._u.flags["C_CONTIGUOUS"]

    def test_events_materialize_python_scalars(self):
        storage = NumpyStorage.from_events([Event(*t) for t in EVENTS])
        ev = storage.events[0]
        assert type(ev.u) is int and type(ev.v) is int
        assert isinstance(ev.t, float) and not isinstance(ev.t, np.floating)

    def test_wide_node_ids_raise_with_guidance(self):
        with pytest.raises(ValueError, match="int64"):
            NumpyStorage.from_events([Event(2**70, 1, 5.0)])

    def test_from_arrays_is_zero_copy(self, storage):
        other = NumpyStorage.from_arrays(storage._u, storage._v, storage._t)
        assert np.shares_memory(other._t, storage._t)
        assert other.to_events() == storage.to_events()

    def test_slice_time_and_range_are_views(self, storage):
        t0, t1 = storage.start_time, storage.end_time
        sliced = storage.slice_time(t0, (t0 + t1) / 2)
        assert np.shares_memory(sliced._t, storage._t)
        ranged = storage.slice_range(5, 50)
        assert np.shares_memory(ranged._u, storage._u)
        assert ranged.to_events() == storage.events[5:50]


class TestBatchedKernels:
    def test_batch_counts_match_scalar_loop(self, storage, events):
        ref = ListStorage.from_events(events)
        t0, t1 = storage.start_time, storage.end_time
        span = t1 - t0
        nodes = (sorted(storage.nodes)[:20] + [-5, 10**7]) * 3
        t_los = [t0 + (i % 9) * span / 9 - 1 for i in range(len(nodes))]
        t_his = [lo + span / 6 for lo in t_los]
        batch = storage.count_node_events_in_batch(nodes, t_los, t_his)
        assert batch == [
            ref.count_node_events_in(n, lo, hi)
            for n, lo, hi in zip(nodes, t_los, t_his)
        ]

    def test_batch_counts_through_tail(self, storage):
        t1 = storage.end_time
        storage.append(Event(0, 1, t1 + 5))
        batch = storage.count_node_events_in_batch([0, 1], [t1, t1], [t1 + 9, t1 + 9])
        assert batch == [
            storage.count_node_events_in(0, t1, t1 + 9),
            storage.count_node_events_in(1, t1, t1 + 9),
        ]

    def test_adjacent_events_between_matches_generic_union(self, storage, events):
        ref = ListStorage.from_events(events)
        t0, t1 = storage.start_time, storage.end_time
        span = t1 - t0
        nodes = sorted(storage.nodes)[:6] + [10**7]
        for lo, hi in [(t0 - 1, t1 + 1), (t0 + span / 3, t0 + 2 * span / 3), (t1, t0)]:
            assert storage.adjacent_events_between(
                nodes, lo, hi
            ) == ref.adjacent_events_between(nodes, lo, hi)


class TestPagePersistence:
    def test_meta_manifest(self, pages):
        meta = page_meta(pages)
        assert meta["format"] == PAGE_FORMAT
        assert meta["version"] == PAGE_VERSION
        assert meta["name"] == "paged"

    @pytest.mark.parametrize("mmap", [True, False])
    def test_roundtrip_is_answer_identical(self, pages, storage, mmap):
        loaded = NumpyStorage.load(pages, mmap=mmap)
        assert loaded.to_events() == storage.to_events()
        assert loaded.node_events == storage.node_events
        assert list(loaded.node_events) == list(storage.node_events)
        assert loaded.edge_events == storage.edge_events
        assert list(loaded.edge_events) == list(storage.edge_events)
        assert loaded.node_times == storage.node_times
        assert loaded.edge_times == storage.edge_times

    def test_mmap_load_opens_read_only_maps(self, pages):
        loaded = NumpyStorage.load(pages)
        assert isinstance(loaded._t, np.memmap)
        assert not loaded._t.flags.writeable

    def test_roundtrip_queries(self, pages, storage):
        loaded = NumpyStorage.load(pages)
        t0, t1 = storage.start_time, storage.end_time
        mid = (t0 + t1) / 2
        for node in sorted(storage.nodes)[:10]:
            assert loaded.node_events_in(node, t0, mid) == storage.node_events_in(
                node, t0, mid
            )
            assert loaded.node_events_between(node, mid, t1) == (
                storage.node_events_between(node, mid, t1)
            )
        assert loaded.events_in(mid, t1) == storage.events_in(mid, t1)

    def test_append_after_mmap_load(self, pages, storage):
        loaded = NumpyStorage.load(pages)
        t1 = loaded.end_time
        fresh = [Event(1, 2, t1 + 1), Event(2, 3, t1 + 1), Event(1, 2, t1 + 4)]
        idxs = loaded.update(fresh)
        assert idxs == [len(storage) + k for k in range(3)]
        reference = ListStorage.from_events(storage.to_events() + tuple(fresh))
        assert loaded.to_events() == reference.to_events()
        assert loaded.node_events == reference.node_events
        assert loaded.edge_events_in((1, 2), t1 + 1, t1 + 9) == (
            reference.edge_events_in((1, 2), t1 + 1, t1 + 9)
        )
        # Compaction folds the tail into ordinary in-memory arrays; the
        # read-only backing pages are never written.
        loaded.compact()
        assert not isinstance(loaded._t, np.memmap)
        assert loaded.to_events() == reference.to_events()
        assert loaded.node_events == reference.node_events

    def test_save_compacts_pending_tail(self, tmp_path, storage):
        storage.append(Event(5, 6, storage.end_time + 2))
        path = os.fspath(tmp_path / "with-tail")
        storage.save(path)
        loaded = NumpyStorage.load(path)
        assert loaded.to_events() == storage.to_events()

    def test_load_without_index_pages_rebuilds_lazily(self, pages, storage):
        for stem in ("node_keys", "node_slots", "node_off", "node_idx", "node_t",
                     "edge_keys", "edge_slots", "edge_off", "edge_idx", "edge_t"):
            os.remove(os.path.join(pages, f"{stem}.npy"))
        loaded = NumpyStorage.load(pages)
        assert loaded.node_events == storage.node_events
        assert loaded.edge_events == storage.edge_events

    def test_load_rejects_missing_or_foreign_directories(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="meta.json"):
            NumpyStorage.load(os.fspath(tmp_path / "nowhere"))
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "meta.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="unrecognized page format"):
            NumpyStorage.load(os.fspath(bad))

    def test_load_rejects_future_versions(self, pages):
        meta = page_meta(pages)
        meta["version"] = PAGE_VERSION + 1
        with open(os.path.join(pages, "meta.json"), "w") as fh:
            json.dump(meta, fh)
        with pytest.raises(ValueError, match="version"):
            load_pages(pages)

    def test_load_rejects_truncated_columns(self, pages):
        np.save(os.path.join(pages, "t.npy"), np.zeros(3))
        np.save(os.path.join(pages, "u.npy"), np.zeros(3, dtype=np.int64))
        np.save(os.path.join(pages, "v.npy"), np.ones(3, dtype=np.int64))
        with pytest.raises(ValueError, match="manifest"):
            NumpyStorage.load(pages)


class TestShardPayload:
    def test_payload_pickles_column_slices(self, storage):
        payload = storage.shard_payload(3, 40)
        assert payload["kind"] == PAGE_FORMAT
        rebuilt = NumpyStorage.from_shard_payload(pickle.loads(pickle.dumps(payload)))
        assert rebuilt.to_events() == storage.events[3:40]

    def test_event_tuple_payload_still_accepted(self, storage):
        rebuilt = NumpyStorage.from_shard_payload(storage.events[3:40])
        assert rebuilt.to_events() == storage.events[3:40]


class TestTemporalGraphFacade:
    def test_save_load_roundtrip_preserves_name_and_backend(self, tmp_path, events):
        graph = TemporalGraph(events, name="facade", backend="numpy")
        path = os.fspath(tmp_path / "facade-pages")
        graph.save(path)
        loaded = TemporalGraph.load(path)
        assert loaded.backend == "numpy"
        assert loaded.name == "facade"
        assert loaded.events == graph.events
        assert TemporalGraph.load(path, name="override").name == "override"

    def test_save_converts_other_backends(self, tmp_path, events):
        graph = TemporalGraph(events, name="col", backend="columnar")
        path = os.fspath(tmp_path / "converted-pages")
        graph.save(path)
        loaded = TemporalGraph.load(path, mmap=False)
        assert loaded.backend == "numpy"
        assert loaded.events == graph.events

    def test_loaded_graph_supports_live_appends(self, tmp_path, events):
        graph = TemporalGraph(events, backend="numpy")
        path = os.fspath(tmp_path / "live-pages")
        graph.save(path)
        loaded = TemporalGraph.load(path)
        idx = loaded.append(Event(3, 4, loaded.times[-1] + 1))
        assert loaded.event_at(idx) == Event(3, 4, graph.times[-1] + 1)
        assert len(loaded) == len(graph) + 1
