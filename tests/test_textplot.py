"""Tests for ASCII rendering."""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.textplot import (
    bar_chart,
    heatmap,
    histogram,
    pair_heatmap,
    pie_text,
    table,
)


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart(["a", "b"], [10, 5], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title(self):
        assert bar_chart(["a"], [1], title="T").splitlines()[0] == "T"

    def test_empty(self):
        assert "(empty)" in bar_chart([], [])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_all_zero_values(self):
        text = bar_chart(["a"], [0])
        assert "#" not in text


class TestHistogram:
    def test_renders_bin_labels(self):
        edges = np.array([0.0, 5.0, 10.0])
        counts = np.array([3, 1])
        text = histogram(edges, counts)
        assert "[0,5)" in text
        assert "[5,10)" in text


class TestHeatmap:
    def test_shape_and_labels(self):
        m = np.array([[1.0, 0.0], [0.5, 1.0]])
        text = heatmap(m, row_labels=["x", "y"], col_labels=["p", "q"])
        assert "x" in text and "q" in text

    def test_zero_cells_blank(self):
        m = np.array([[1.0, 0.0]])
        lines = heatmap(m).splitlines()
        # last row: label + dark cell + blank cell
        assert lines[-1].rstrip().endswith("@@") or "  " in lines[-1]

    def test_pair_heatmap_axes(self):
        text = pair_heatmap(np.zeros((6, 6)))
        for letter in "RPIOCW":
            assert letter in text


class TestTable:
    def test_alignment_and_content(self):
        text = table(("A", "Blong"), [("1", "2"), ("333", "4")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert set(lines[2]) <= {"-", " "}

    def test_non_string_cells(self):
        text = table(("n",), [(42,)])
        assert "42" in text


class TestPieText:
    def test_percentages(self):
        text = pie_text({"R": 0.5, "P": 0.5})
        assert "50.0%" in text
