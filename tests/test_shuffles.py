"""Tests for the randomized reference models."""

from collections import Counter

import pytest

pytest.importorskip("numpy", reason="the shuffle null models are numpy-seeded")

from repro.core.temporal_graph import TemporalGraph
from repro.randomization.shuffles import (
    link_shuffle,
    motif_zscore,
    permuted_timestamps,
    shuffle_interevent_times,
    snapshot_shuffle,
)


@pytest.fixture
def graph() -> TemporalGraph:
    return TemporalGraph.from_tuples(
        [(0, 1, 0), (0, 1, 10), (1, 2, 15), (2, 0, 30), (1, 2, 45), (0, 1, 60)]
    )


class TestPermutedTimestamps:
    def test_preserves_timestamp_multiset(self, graph):
        shuffled = permuted_timestamps(graph, seed=0)
        assert sorted(shuffled.times) == sorted(graph.times)

    def test_preserves_edge_multiset(self, graph):
        shuffled = permuted_timestamps(graph, seed=0)
        assert Counter(ev.edge for ev in shuffled.events) == Counter(
            ev.edge for ev in graph.events
        )

    def test_deterministic_with_seed(self, graph):
        assert permuted_timestamps(graph, seed=5).events == permuted_timestamps(
            graph, seed=5
        ).events


class TestLinkShuffle:
    def test_preserves_per_edge_time_lists_as_multiset(self, graph):
        shuffled = link_shuffle(graph, seed=1)
        original_lists = sorted(
            tuple(graph.times[i] for i in idxs)
            for idxs in graph.edge_events.values()
        )
        shuffled_lists = sorted(
            tuple(shuffled.times[i] for i in idxs)
            for idxs in shuffled.edge_events.values()
        )
        assert original_lists == shuffled_lists

    def test_preserves_event_count(self, graph):
        assert len(link_shuffle(graph, seed=2)) == len(graph)

    def test_edges_are_original_edges(self, graph):
        shuffled = link_shuffle(graph, seed=3)
        assert set(shuffled.static_edges()) == set(graph.static_edges())


class TestIntereventShuffle:
    def test_preserves_per_edge_counts(self, graph):
        shuffled = shuffle_interevent_times(graph, seed=4)
        assert {
            e: len(v) for e, v in shuffled.edge_events.items()
        } == {e: len(v) for e, v in graph.edge_events.items()}

    def test_preserves_first_activation_and_gap_multiset(self, graph):
        shuffled = shuffle_interevent_times(graph, seed=4)
        for edge, idxs in graph.edge_events.items():
            orig = [graph.times[i] for i in idxs]
            new = [shuffled.times[i] for i in shuffled.edge_events[edge]]
            assert new[0] == orig[0]
            orig_gaps = sorted(b - a for a, b in zip(orig, orig[1:]))
            new_gaps = sorted(b - a for a, b in zip(new, new[1:]))
            assert orig_gaps == pytest.approx(new_gaps)


class TestSnapshotShuffle:
    def test_events_stay_in_their_bin(self, graph):
        shuffled = snapshot_shuffle(graph, bin_width=20, seed=5)
        orig_bins = sorted(int(ev.t // 20) for ev in graph.events)
        new_bins = sorted(int(ev.t // 20) for ev in shuffled.events)
        assert orig_bins == new_bins

    def test_rejects_bad_bin_width(self, graph):
        with pytest.raises(ValueError):
            snapshot_shuffle(graph, bin_width=0)


class TestZScores:
    def test_positive_when_overrepresented(self):
        observed = {"010101": 10}
        nulls = [{"010101": 2}, {"010101": 4}, {"010101": 3}]
        z = motif_zscore(observed, nulls)
        assert z["010101"] > 0

    def test_zero_std_handling(self):
        observed = {"a": 5, "b": 3, "c": 1}
        nulls = [{"a": 5, "b": 1, "c": 2}, {"a": 5, "b": 1, "c": 2}]
        z = motif_zscore(observed, nulls)
        assert z["a"] == 0.0
        assert z["b"] == float("inf")
        assert z["c"] == float("-inf")

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            motif_zscore({"a": 1}, [])

    def test_loose_null_flags_everything(self, small_sms):
        """The paper's negative result: against a timestamp permutation,
        bursty motifs look wildly significant."""
        from repro.algorithms.counting import count_motifs
        from repro.core.constraints import TimingConstraints

        constraints = TimingConstraints.only_c(300)
        g = small_sms.head(600)
        observed = count_motifs(g, 2, constraints, max_nodes=2)
        nulls = [
            count_motifs(permuted_timestamps(g, seed=s), 2, constraints, max_nodes=2)
            for s in range(3)
        ]
        z = motif_zscore(observed, nulls)
        # the two-node repetition motif is heavily amplified by burstiness
        assert z.get("0101", 0) > 2
