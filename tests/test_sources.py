"""The unified graph-source resolution API (``repro.sources``, PR 8).

One rule set turns anything graph-like — dataset names, flat or
partitioned page directories, inline events, wire-spec dicts, live
graphs — into a :class:`~repro.sources.GraphSource`.  The census
service's workers, the experiments CLI and the library all resolve
through it, so these tests double as the service's source-handling
contract (including the name round-trip through the ``"events"`` wire
spec, which the pre-PR 8 private service resolver dropped).
"""

from __future__ import annotations

import pytest

from repro.core.temporal_graph import TemporalGraph
from repro.sources import GraphSource, resolve

TUPLES = [(0, 1, 10.0), (1, 2, 20.0), (0, 2, 25.0)]


# ----------------------------------------------------------------------
# resolution forms
# ----------------------------------------------------------------------
def test_resolve_dataset_name():
    source = resolve("sms-copenhagen", scale=0.05, seed=7)
    assert source.kind == "dataset"
    assert source.dataset == "sms-copenhagen"
    assert source.scale == 0.05 and source.seed == 7
    assert "sms-copenhagen" in source.describe()


def test_resolve_unknown_name_lists_datasets(tmp_path):
    with pytest.raises(ValueError, match="sms-copenhagen"):
        resolve("no-such-dataset")
    # A directory that is neither layout is diagnosed, not misresolved.
    with pytest.raises(ValueError, match="manifest.json"):
        resolve(tmp_path)


def test_resolve_rejects_unresolvable_types():
    with pytest.raises(TypeError):
        resolve(42)
    with pytest.raises(ValueError, match="kind"):
        resolve({"kind": "teapot"})
    with pytest.raises(ValueError, match="kind"):
        GraphSource(kind="teapot").spec()


def test_resolve_inline_events():
    source = resolve(TUPLES, name="inline")
    assert source.kind == "events"
    graph = source.open()
    assert graph.name == "inline"
    assert [(ev.u, ev.v, ev.t) for ev in graph.events] == TUPLES


def test_resolve_graph_and_passthrough():
    graph = TemporalGraph.from_tuples(TUPLES, name="mine")
    source = resolve(graph)
    assert source.kind == "graph"
    assert source.open() is graph
    assert resolve(source) is source
    assert resolve(source, name="renamed").name == "renamed"


def test_graph_spec_degrades_to_named_events():
    # The satellite-3 regression: shipping an in-process graph over the
    # wire (the service does this for inline sources) must keep its name.
    graph = TemporalGraph.from_tuples(TUPLES, name="mine")
    spec = resolve(graph).spec()
    assert spec["kind"] == "events"
    assert spec["name"] == "mine"
    reopened = resolve(spec).open()
    assert reopened.name == "mine"
    assert list(reopened.events) == list(graph.events)


def test_resolve_dataset_open_matches_registry():
    pytest.importorskip("numpy", reason="dataset synthesis is numpy-seeded")
    from repro.datasets.registry import get_dataset

    graph = resolve("sms-copenhagen", scale=0.05).open()
    oracle = get_dataset("sms-copenhagen", scale=0.05)
    assert graph.name == oracle.name
    assert list(graph.events) == list(oracle.events)
    renamed = resolve("sms-copenhagen", scale=0.05, name="alias").open()
    assert renamed.name == "alias"
    assert list(renamed.events) == list(oracle.events)


# ----------------------------------------------------------------------
# directory sniffing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("partition_events", (None, 2))
def test_resolve_page_directories(tmp_path, partition_events):
    pytest.importorskip("numpy", reason="page directories require numpy")
    graph = TemporalGraph.from_tuples(TUPLES, name="paged")
    graph.save(tmp_path / "d", partition_events=partition_events)
    source = resolve(tmp_path / "d")
    assert source.kind == ("pages" if partition_events is None else "partitioned")
    reopened = source.open()
    assert reopened.name == "paged"
    assert list(reopened.events) == list(graph.events)
    assert source.describe().startswith(source.kind)


# ----------------------------------------------------------------------
# wire-spec round trips
# ----------------------------------------------------------------------
def test_spec_round_trips(tmp_path):
    pytest.importorskip("numpy", reason="page directories require numpy")
    TemporalGraph.from_tuples(TUPLES, name="paged").save(tmp_path / "d")
    sources = [
        resolve(TUPLES, name="inline"),
        resolve("sms-copenhagen", scale=0.5, seed=3),
        resolve(tmp_path / "d", name="alias"),
    ]
    for source in sources:
        spec = source.spec()
        assert resolve(spec).spec() == spec  # wire form is a fixed point


def test_service_worker_resolves_through_sources():
    # The service's worker-side entry point is a veneer over resolve().
    from repro.service.workers import open_graph_source

    graph = open_graph_source(
        {"kind": "events", "events": TUPLES, "name": "wired"}
    )
    assert graph.name == "wired"
    assert [(ev.u, ev.v, ev.t) for ev in graph.events] == TUPLES


def test_load_graphs_accepts_page_dirs(tmp_path):
    # The experiments CLI path: --datasets may name a page directory.
    pytest.importorskip("numpy", reason="page directories require numpy")
    from repro.experiments.base import load_graphs

    TemporalGraph.from_tuples(TUPLES, name="paged").save(
        tmp_path / "d", partition_events=2
    )
    graphs = load_graphs([str(tmp_path / "d")])
    assert [g.name for g in graphs] == ["paged"]
    assert [(ev.u, ev.v, ev.t) for ev in graphs[0].events] == TUPLES
