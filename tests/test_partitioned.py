"""Out-of-core partitioned page directories (PR 8).

Three layers under contract:

* the **writer** — ``write_partitioned`` streams events into per-interval
  page sets with bounded memory, never splitting a same-timestamp tick
  across a partition boundary;
* the **storage** — ``PartitionedStorage`` answers the full
  ``GraphStorage`` query contract identically to an in-memory build,
  while keeping at most ``max_resident`` partitions open;
* the **execution** — censuses over a partitioned graph route through
  the shard planner (even at ``jobs=1``) and stay **bit-identical** to
  the in-memory serial answer, counter key order included.

The Hypothesis property drives streams heavy on same-timestamp ticks
with a tiny ``partition_events`` so ticks land on (and straddle would-be)
partition edges; the session-scoped backend fixture replays the whole
module per storage backend, which is how the in-memory oracle covers
list, columnar and numpy.
"""

from __future__ import annotations

import json
import os

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.counting import run_census
from repro.core.constraints import TimingConstraints
from repro.core.events import Event, validate_events
from repro.core.temporal_graph import TemporalGraph
from repro.parallel.shards import plan_shards
from repro.storage import available_backends
from repro.storage.numpy_backend import NumpyStorage
from repro.storage.partitioned import (
    MANIFEST_NAME,
    PartitionedStorage,
    is_partitioned,
    load_partitioned,
    partitioned_meta,
    write_partitioned,
)

LOOSE = TimingConstraints(delta_c=50.0, delta_w=50.0)


def _stream(m: int, *, tick: int = 3, n_nodes: int = 9) -> list[Event]:
    """A deterministic bursty stream: ticks of ``tick`` same-time events."""
    out = []
    for i in range(m):
        u = (i * 5) % n_nodes
        v = (u + 1 + (i // 7) % (n_nodes - 1)) % n_nodes
        out.append(Event(u, v, float(i // tick)))
    return validate_events(out)


def _census_items(graph, *, jobs=1):
    census = run_census(graph, n_events=3, constraints=LOOSE, jobs=jobs)
    return (
        list(census.code_counts.items()),
        list(census.pair_counts.items()),
        census.total,
    )


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
def test_writer_round_trip(tmp_path):
    events = _stream(100)
    manifest = write_partitioned(events, tmp_path, partition_events=16, name="bursty")
    assert is_partitioned(tmp_path)
    assert manifest == partitioned_meta(tmp_path)
    assert manifest["n_events"] == 100
    assert manifest["name"] == "bursty"
    assert len(manifest["partitions"]) > 1

    storage, meta = load_partitioned(tmp_path)
    assert meta["name"] == "bursty"
    assert list(storage.events) == events
    # Each partition is itself a valid flat page set.
    for part in manifest["partitions"]:
        assert os.path.exists(tmp_path / part["dir"] / "meta.json")


def test_writer_never_splits_a_tick(tmp_path):
    # Ticks of 7 events with partition_events=5: every flush lands inside
    # a tick, so the hold-back rule is exercised at every boundary.
    events = _stream(70, tick=7)
    manifest = write_partitioned(events, tmp_path, partition_events=5)
    parts = manifest["partitions"]
    assert len(parts) > 1
    for prev, cur in zip(parts, parts[1:]):
        assert prev["t_max"] < cur["t_min"]
        assert prev["ev_lo"] + prev["n_events"] == cur["ev_lo"]


def test_writer_giant_tick_grows_partition(tmp_path):
    # All events share one timestamp: partition_events=1 must still yield
    # a single partition (a tick can never straddle an edge).
    events = [Event(i, i + 1, 5.0) for i in range(12)]
    manifest = write_partitioned(events, tmp_path, partition_events=1)
    assert len(manifest["partitions"]) == 1
    assert manifest["partitions"][0]["n_events"] == 12


def test_writer_accepts_within_buffer_disorder(tmp_path):
    events = _stream(30)
    shuffled = events[::-1]  # fully reversed, but fits in one buffer
    write_partitioned(shuffled, tmp_path, partition_events=64)
    storage, _ = load_partitioned(tmp_path)
    assert list(storage.events) == events


def test_writer_rejects_out_of_order_beyond_buffer(tmp_path):
    events = _stream(40) + [Event(0, 1, 0.0)]  # t=0 after t≈13 flushed
    with pytest.raises(ValueError, match="time order"):
        write_partitioned(events, tmp_path, partition_events=8)


def test_writer_empty_stream(tmp_path):
    manifest = write_partitioned([], tmp_path, partition_events=8)
    assert manifest["n_events"] == 0
    assert manifest["partitions"] == []
    storage, _ = load_partitioned(tmp_path)
    assert len(storage) == 0
    assert storage.start_time is None and storage.end_time is None
    assert storage.events == ()
    assert plan_shards(TemporalGraph._from_storage(storage), 10.0, 4)


def test_writer_rejects_bad_partition_events(tmp_path):
    with pytest.raises(ValueError, match="partition_events"):
        write_partitioned([], tmp_path, partition_events=0)


# ----------------------------------------------------------------------
# manifest validation
# ----------------------------------------------------------------------
def _tamper(path, mutate):
    manifest_path = os.path.join(path, MANIFEST_NAME)
    with open(manifest_path) as fh:
        meta = json.load(fh)
    mutate(meta)
    with open(manifest_path, "w") as fh:
        json.dump(meta, fh)


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda m: m.update(format="something-else"), "unrecognized"),
        (lambda m: m.update(version=99), "version"),
        (lambda m: m["partitions"][1].update(ev_lo=3), "starts at event"),
        (lambda m: m["partitions"][1].update(t_min=0.0), "tick-aligned"),
        (lambda m: m.update(n_events=7), "records"),
        (lambda m: m["partitions"][0].update(n_events=0, ev_lo=0), "empty"),
    ],
)
def test_manifest_validation_rejects_corruption(tmp_path, mutate, message):
    write_partitioned(_stream(40), tmp_path, partition_events=8)
    _tamper(tmp_path, mutate)
    with pytest.raises(ValueError, match=message):
        partitioned_meta(tmp_path)


def test_missing_manifest(tmp_path):
    assert not is_partitioned(tmp_path)
    with pytest.raises(FileNotFoundError):
        partitioned_meta(tmp_path)


# ----------------------------------------------------------------------
# storage parity + residency
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def parity_pair(tmp_path_factory):
    events = _stream(120, tick=4)
    path = tmp_path_factory.mktemp("parts")
    write_partitioned(events, path, partition_events=16, name="parity")
    storage, _ = load_partitioned(path, max_resident=2)
    oracle = NumpyStorage.from_events(events, presorted=True)
    return storage, oracle


def test_query_parity_against_flat(parity_pair):
    storage, oracle = parity_pair
    assert len(storage) == len(oracle)
    assert list(storage.events) == list(oracle.events)
    assert list(storage.times) == list(oracle.times)
    assert storage.nodes == oracle.nodes
    assert storage.num_nodes == oracle.num_nodes
    assert storage.num_edges == oracle.num_edges
    assert storage.start_time == oracle.start_time
    assert storage.end_time == oracle.end_time
    # First-appearance iteration order of the adjacency views is part of
    # the contract (seeded consumers depend on it).
    assert list(storage.node_events) == list(oracle.node_events)
    assert dict(storage.node_events) == {
        k: list(v) for k, v in oracle.node_events.items()
    }
    assert list(storage.edge_events) == list(oracle.edge_events)
    assert dict(storage.edge_times) == {
        k: list(v) for k, v in oracle.edge_times.items()
    }
    for idx in (0, 1, len(oracle) // 2, len(oracle) - 1, -1):
        assert storage.event_at(idx) == oracle.event_at(idx)
        assert storage.time_at(idx) == oracle.time_at(idx)
    assert list(storage.iter_uvt()) == list(oracle.iter_uvt())


def test_windowed_query_parity(parity_pair):
    storage, oracle = parity_pair
    ts = sorted({*oracle.times})
    windows = [
        (ts[0], ts[-1]),
        (ts[2], ts[5]),
        (ts[3] + 0.5, ts[7] + 0.5),
        (-10.0, -1.0),
        (ts[-1] + 1, ts[-1] + 5),
        (ts[4], ts[4]),
    ]
    nodes = sorted(oracle.nodes)
    edges = list(oracle.edge_events)[:6]
    for lo, hi in windows:
        assert storage.events_in(lo, hi) == oracle.events_in(lo, hi)
        assert storage.count_events_in(lo, hi) == oracle.count_events_in(lo, hi)
        assert storage.bisect_time_left(lo) == oracle.bisect_time_left(lo)
        assert storage.bisect_time_right(hi) == oracle.bisect_time_right(hi)
        for node in nodes:
            assert storage.node_events_in(node, lo, hi) == oracle.node_events_in(
                node, lo, hi
            )
            assert storage.count_node_events_in(
                node, lo, hi
            ) == oracle.count_node_events_in(node, lo, hi)
            assert storage.node_events_between(
                node, lo, hi
            ) == oracle.node_events_between(node, lo, hi)
        for edge in edges:
            assert storage.edge_events_in(edge, lo, hi) == oracle.edge_events_in(
                edge, lo, hi
            )
        assert storage.adjacent_events_between(
            nodes[:4], lo, hi
        ) == oracle.adjacent_events_between(nodes[:4], lo, hi)


def test_slice_parity(parity_pair):
    storage, oracle = parity_pair
    m = len(oracle)
    for lo, hi in [(0, m), (5, 9), (10, 70), (m - 3, m), (40, 40)]:
        sliced = storage.slice_range(lo, hi)
        assert isinstance(sliced, NumpyStorage)
        assert list(sliced.events) == list(oracle.slice_range(lo, hi).events)
    assert list(storage.slice_time(3.0, 11.0).events) == list(
        oracle.slice_time(3.0, 11.0).events
    )


def test_lru_residency_bound(tmp_path):
    write_partitioned(_stream(128), tmp_path, partition_events=8)
    storage, _ = load_partitioned(tmp_path, max_resident=2)
    assert storage.n_partitions > 4
    assert storage.resident_partitions == ()
    for idx in range(0, len(storage), 5):
        storage.event_at(idx)
        assert len(storage.resident_partitions) <= 2
    # The LRU keeps the most recently touched partition resident.
    last = storage.resident_partitions[-1]
    storage.event_at(len(storage) - 1)
    assert storage.resident_partitions[-1] >= last


def test_shard_payload_round_trip(tmp_path):
    write_partitioned(_stream(60), tmp_path, partition_events=8)
    storage, _ = load_partitioned(tmp_path)
    payload = storage.shard_payload(10, 45)
    # Constant-size wire form: no event data crosses the pool boundary.
    assert payload["path"] == str(tmp_path)
    rebuilt = PartitionedStorage.from_shard_payload(payload)
    assert isinstance(rebuilt, NumpyStorage)
    assert list(rebuilt.events) == list(storage.events)[10:45]


def test_append_is_refused(tmp_path):
    write_partitioned(_stream(10), tmp_path, partition_events=4)
    storage, _ = load_partitioned(tmp_path)
    assert not PartitionedStorage.supports_append
    with pytest.raises(NotImplementedError):
        storage.append(Event(0, 1, 99.0))


def test_registry_from_events_round_trip():
    assert "partitioned" in available_backends()
    events = _stream(40)
    storage = PartitionedStorage.from_events(events, partition_events=8, name="reg")
    assert storage.n_partitions > 1
    assert list(storage.events) == events
    assert storage.meta["name"] == "reg"


# ----------------------------------------------------------------------
# planning + execution
# ----------------------------------------------------------------------
def test_plan_shards_parity_with_flat(tmp_path):
    events = _stream(200, tick=5)
    write_partitioned(events, tmp_path, partition_events=32)
    storage, _ = load_partitioned(tmp_path, max_resident=2)
    part_graph = TemporalGraph._from_storage(storage, name="plan")
    flat_graph = TemporalGraph._from_storage(
        NumpyStorage.from_events(events, presorted=True), name="plan"
    )
    delta = LOOSE.loose_timespan_bound(3)
    for n_shards in (1, 2, 4, 7):
        assert plan_shards(part_graph, delta, n_shards) == plan_shards(
            flat_graph, delta, n_shards
        )


def test_shard_count_hint_covers_partitions(tmp_path):
    write_partitioned(_stream(96), tmp_path, partition_events=12)
    storage, _ = load_partitioned(tmp_path)
    assert storage.prefers_sharded_execution
    assert storage.shard_count_hint() == storage.n_partitions > 1


def test_census_bit_identity(tmp_path):
    events = _stream(150, tick=4)
    write_partitioned(events, tmp_path, partition_events=16, name="census")
    storage, _ = load_partitioned(tmp_path, max_resident=2)
    part_graph = TemporalGraph._from_storage(storage, name="census")
    memory_graph = TemporalGraph(events, name="census")

    reference = _census_items(memory_graph, jobs=1)
    assert reference[2] > 0
    assert _census_items(part_graph, jobs=1) == reference
    assert _census_items(part_graph, jobs=4) == reference


# ----------------------------------------------------------------------
# facade integration (save/load autodetect, name round-trip)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ("list", "columnar", "numpy"))
@pytest.mark.parametrize("partition_events", (None, 16))
def test_facade_save_load_name_round_trip(tmp_path, backend, partition_events):
    if backend not in available_backends():
        pytest.skip(f"{backend} backend unavailable")
    events = _stream(50)
    graph = TemporalGraph(events, name="round-trip", backend=backend)
    target = tmp_path / "pages"
    graph.save(target, partition_events=partition_events)
    assert is_partitioned(target) == (partition_events is not None)
    loaded = TemporalGraph.load(target)
    assert loaded.name == "round-trip"
    assert list(loaded.events) == events
    renamed = TemporalGraph.load(target, name="other")
    assert renamed.name == "other"


# ----------------------------------------------------------------------
# the property: ticks straddling partition edges never change a census
# ----------------------------------------------------------------------
tick_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=5),  # offset, so u != v
        # Few distinct timestamps → heavy same-timestamp ticks, which a
        # tiny partition_events forces onto partition edges.
        st.integers(min_value=0, max_value=6).map(float),
    ),
    min_size=1,
    max_size=28,
)


@settings(max_examples=25, deadline=None)
@given(tuples=tick_streams)
def test_partitioned_census_matches_flat_and_memory(tuples, tmp_path_factory):
    events = validate_events(Event(u, (u + off) % 6, t) for u, off, t in tuples)
    memory_graph = TemporalGraph(events, name="prop")

    base = tmp_path_factory.mktemp("prop")
    flat_dir, part_dir = base / "flat", base / "parts"
    memory_graph.save(flat_dir)
    memory_graph.save(part_dir, partition_events=4)

    flat_graph = TemporalGraph.load(flat_dir, mmap=True)
    part_graph = TemporalGraph.load(part_dir)
    assert part_graph.name == flat_graph.name == "prop"

    reference = _census_items(memory_graph, jobs=1)
    assert _census_items(flat_graph, jobs=1) == reference
    assert _census_items(part_graph, jobs=1) == reference
    assert _census_items(part_graph, jobs=2) == reference
