"""Unit tests for the motif notation — including the paper's taxonomy counts."""

import pytest

from repro.core.notation import (
    all_motif_codes,
    canonical_code,
    code_edges,
    code_nodes,
    code_of_events,
    describe_code,
    event_count_of_code,
    is_single_component_growth,
    is_valid_code,
    motif_codes_with_nodes,
    node_count_of_code,
    parse_code,
)


class TestCanonicalCode:
    def test_first_event_always_01(self):
        assert canonical_code([(42, 17)]) == "01"

    def test_paper_triangle_example(self):
        # Figure 2's 011202: black→white, white→gray, black→gray.
        assert canonical_code([(5, 6), (6, 7), (5, 7)]) == "011202"

    def test_paper_four_event_example(self):
        # Figure 2's 01023132.
        assert canonical_code([(9, 8), (9, 7), (6, 8), (6, 7)]) == "01023132"

    def test_node_numbering_follows_appearance(self):
        assert canonical_code([(3, 1), (1, 2)]) == "0112"

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical_code([(1, 1)])

    def test_rejects_too_many_nodes(self):
        pairs = [(0, 1)] + [(0, k) for k in range(2, 12)]
        with pytest.raises(ValueError, match="too many nodes"):
            canonical_code(pairs)

    def test_code_of_events_uses_node_pairs(self):
        assert code_of_events([(4, 5, 100.0), (5, 6, 200.0)]) == "0112"


class TestParseCode:
    def test_roundtrip(self):
        pairs = parse_code("011202")
        assert pairs == [(0, 1), (1, 2), (0, 2)]
        assert canonical_code(pairs) == "011202"

    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            parse_code("011")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_code("")

    def test_rejects_non_digits(self):
        with pytest.raises(ValueError):
            parse_code("01ab")

    def test_rejects_loop_pair(self):
        with pytest.raises(ValueError):
            parse_code("0111")


class TestValidity:
    def test_canonical_codes_are_valid(self):
        assert is_valid_code("010102")
        assert is_valid_code("011202")

    def test_non_canonical_numbering_invalid(self):
        assert not is_valid_code("0212")  # first event must be 01

    def test_disconnected_growth_invalid(self):
        assert not is_valid_code("0123")  # second event touches no seen node

    def test_malformed_invalid(self):
        assert not is_valid_code("abc")
        assert not is_valid_code("0")

    def test_growth_check_direct(self):
        assert is_single_component_growth([(0, 1), (1, 2), (2, 3)])
        assert not is_single_component_growth([(0, 1), (2, 3)])
        assert not is_single_component_growth([])


class TestTaxonomyCounts:
    """The counts the paper states (Section 5, 'Motif notation')."""

    def test_three_event_up_to_three_nodes_is_36(self):
        assert len(all_motif_codes(3, 3)) == 36

    def test_3n3e_is_32(self):
        assert len(motif_codes_with_nodes(3, 3)) == 32

    def test_2n3e_is_4(self):
        assert len(motif_codes_with_nodes(3, 2)) == 4

    def test_four_event_up_to_three_nodes_is_216(self):
        assert len(all_motif_codes(4, 3)) == 216

    def test_4n4e_is_480(self):
        assert len(motif_codes_with_nodes(4, 4)) == 480

    def test_four_event_up_to_four_nodes_is_696(self):
        assert len(all_motif_codes(4, 4)) == 696

    def test_2n4e_is_8(self):
        assert len(motif_codes_with_nodes(4, 2)) == 8

    def test_3n4e_is_208(self):
        assert len(motif_codes_with_nodes(4, 3)) == 208

    def test_two_event_codes_are_the_six_pair_types(self):
        assert len(all_motif_codes(2, 3)) == 6

    def test_all_generated_codes_valid(self):
        for code in all_motif_codes(3, 3):
            assert is_valid_code(code)

    def test_codes_sorted_and_unique(self):
        codes = all_motif_codes(3, 3)
        assert list(codes) == sorted(set(codes))

    def test_single_event(self):
        assert all_motif_codes(1) == ("01",)

    def test_rejects_zero_events(self):
        with pytest.raises(ValueError):
            all_motif_codes(0)

    def test_paper_focus_motifs_exist(self):
        codes = set(motif_codes_with_nodes(3, 3))
        for focus in ("010210", "011210", "012010", "012110",
                      "010102", "010202", "012020", "010201"):
            assert focus in codes


class TestHelpers:
    def test_node_count(self):
        assert node_count_of_code("010102") == 3
        assert node_count_of_code("0101") == 2

    def test_event_count(self):
        assert event_count_of_code("010102") == 3

    def test_code_edges(self):
        assert code_edges("010102") == {(0, 1), (0, 2)}

    def test_code_nodes(self):
        assert code_nodes("011202") == {0, 1, 2}

    def test_describe(self):
        text = describe_code("011202")
        assert "3 events" in text
        assert "3 nodes" in text
