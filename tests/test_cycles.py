"""Tests for temporal cycle enumeration."""

import pytest

from repro.algorithms.cycles import (
    count_cycles_by_length,
    cycle_nodes,
    enumerate_temporal_cycles,
)
from repro.core.temporal_graph import TemporalGraph


@pytest.fixture
def cycle_graph() -> TemporalGraph:
    """A 3-cycle, a 2-cycle, and noise."""
    return TemporalGraph.from_tuples(
        [
            (0, 1, 0),   # cycle A starts
            (1, 2, 5),
            (2, 0, 9),   # cycle A closes: 0→1→2→0
            (3, 4, 10),  # cycle B starts
            (4, 3, 12),  # cycle B closes: 3→4→3
            (0, 3, 20),  # noise
        ]
    )


class TestEnumeration:
    def test_finds_both_cycles(self, cycle_graph):
        cycles = list(enumerate_temporal_cycles(cycle_graph, delta_w=50))
        assert set(cycles) == {(0, 1, 2), (3, 4)}

    def test_min_length_filter(self, cycle_graph):
        cycles = list(
            enumerate_temporal_cycles(cycle_graph, delta_w=50, min_length=3)
        )
        assert cycles == [(0, 1, 2)]

    def test_max_length_filter(self, cycle_graph):
        cycles = list(
            enumerate_temporal_cycles(cycle_graph, delta_w=50, max_length=2)
        )
        assert cycles == [(3, 4)]

    def test_window_prunes(self, cycle_graph):
        cycles = list(enumerate_temporal_cycles(cycle_graph, delta_w=5))
        assert cycles == [(3, 4)]  # the 3-cycle spans 9 > 5

    def test_strictly_increasing_times_required(self):
        g = TemporalGraph.from_tuples([(0, 1, 5), (1, 0, 5)])
        assert list(enumerate_temporal_cycles(g, delta_w=50)) == []

    def test_simple_cycles_only(self):
        """A walk revisiting an intermediate node is not a simple cycle."""
        g = TemporalGraph.from_tuples(
            [(0, 1, 0), (1, 2, 1), (2, 1, 2), (1, 0, 3)]
        )
        cycles = set(enumerate_temporal_cycles(g, delta_w=50, max_length=4))
        # 0→1→0 via events (0, 3); 1→2→1 via events (1, 2); but not the
        # length-4 walk 0→1→2→1→0 (revisits node 1).
        assert cycles == {(0, 3), (1, 2)}

    def test_max_cycles_cap(self, cycle_graph):
        cycles = list(
            enumerate_temporal_cycles(cycle_graph, delta_w=50, max_cycles=1)
        )
        assert len(cycles) == 1

    def test_rejects_bad_parameters(self, cycle_graph):
        with pytest.raises(ValueError):
            list(enumerate_temporal_cycles(cycle_graph, delta_w=0))
        with pytest.raises(ValueError):
            list(enumerate_temporal_cycles(cycle_graph, delta_w=5, min_length=1))


class TestHelpers:
    def test_count_by_length(self, cycle_graph):
        counts = count_cycles_by_length(cycle_graph, delta_w=50)
        assert counts == {3: 1, 2: 1}

    def test_cycle_nodes(self, cycle_graph):
        assert cycle_nodes(cycle_graph, (0, 1, 2)) == [0, 1, 2]

    def test_money_loop_in_transaction_burst(self):
        """The fraud scenario: money leaves and returns within a window."""
        g = TemporalGraph.from_tuples(
            [(10, 20, 0), (20, 30, 100), (30, 40, 200), (40, 10, 300),
             (10, 50, 5000)]
        )
        cycles = list(
            enumerate_temporal_cycles(g, delta_w=400, min_length=4, max_length=4)
        )
        assert len(cycles) == 1
        assert cycle_nodes(g, cycles[0]) == [10, 20, 30, 40]
