"""Tests for the dataset registry."""

import pytest

from repro.datasets.registry import (
    DATASETS,
    MESSAGE_NETWORKS,
    dataset_names,
    get_dataset,
    get_spec,
)


class TestRegistryContents:
    def test_nine_datasets(self):
        assert len(DATASETS) == 9

    def test_paper_dataset_names_present(self):
        expected = {
            "bitcoin-otc",
            "college-msg",
            "calls-copenhagen",
            "sms-copenhagen",
            "email",
            "fb-wall",
            "sms-a",
            "stackoverflow",
            "superuser",
        }
        assert set(dataset_names()) == expected

    def test_message_networks_subset(self):
        assert set(MESSAGE_NETWORKS) <= set(dataset_names())

    def test_specs_have_descriptions_and_rows(self):
        for spec in DATASETS.values():
            assert spec.description
            assert spec.paper_row.events > 0
            assert 0 < spec.paper_row.unique_ts_fraction <= 1

    def test_bitcoin_forbids_repeated_edges(self):
        assert not DATASETS["bitcoin-otc"].config.allow_repeated_edges

    def test_email_has_same_timestamp_ccs(self):
        assert DATASETS["email"].config.cc_same_timestamp

    def test_qa_sites_have_in_bursts(self):
        assert DATASETS["stackoverflow"].config.p_in_burst > 0
        assert DATASETS["superuser"].config.p_in_burst > 0

    def test_message_networks_reply_heavy(self):
        for name in MESSAGE_NETWORKS:
            cfg = DATASETS[name].config
            assert cfg.p_reply >= 0.5


class TestGetDataset:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy", reason="dataset synthesis is numpy-seeded")

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known datasets"):
            get_dataset("nope")
        with pytest.raises(KeyError):
            get_spec("nope")

    def test_default_seed_is_deterministic(self):
        a = get_dataset("calls-copenhagen", scale=0.2)
        b = get_dataset("calls-copenhagen", scale=0.2)
        assert a.events == b.events

    def test_seed_override_changes_data(self):
        a = get_dataset("calls-copenhagen", scale=0.2)
        b = get_dataset("calls-copenhagen", scale=0.2, seed=999)
        assert a.events != b.events

    def test_scale_changes_size(self):
        small = get_dataset("calls-copenhagen", scale=0.1)
        spec = DATASETS["calls-copenhagen"]
        assert len(small) == max(1, int(round(spec.config.n_events * 0.1)))

    def test_graph_is_named(self):
        g = get_dataset("fb-wall", scale=0.05)
        assert g.name == "fb-wall"


class TestDomainSignatures:
    """The Table-2 signatures the generators are calibrated to."""

    def test_bitcoin_events_equal_edges(self, small_bitcoin):
        assert len(small_bitcoin) == small_bitcoin.num_edges

    def test_email_unique_fraction_low(self, small_email):
        others = get_dataset("college-msg", scale=0.1)
        assert (
            small_email.unique_timestamp_fraction()
            < others.unique_timestamp_fraction()
        )

    def test_bitcoin_has_largest_median_gap(self, small_bitcoin, small_sms):
        assert (
            small_bitcoin.median_interevent_time()
            > small_sms.median_interevent_time()
        )
