"""Integration tests: every experiment runs and shows the paper's shapes.

Dataset-backed experiments run at a small scale on a subset of datasets so
the suite stays fast; shape assertions are therefore *lenient* (signs and
orderings that are robust at small scale) — the benchmark harness runs the
full-scale versions.
"""

import pytest

pytest.importorskip("numpy", reason="experiments run on numpy-seeded datasets")

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.runner import run_all

SCALE = 0.25
MSG = ["sms-copenhagen", "college-msg"]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "figure1",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "nullmodels",
            "stream",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="known experiments"):
            run_experiment("table99")


class TestConceptualExperiments:
    def test_table1_matches_paper(self):
        result = run_experiment("table1")
        assert result.data["mismatches"] == []

    def test_figure1_matches_paper(self):
        result = run_experiment("figure1")
        assert result.data["agreement"]
        assert result.data["verdicts"] == result.data["expected"]


class TestTable2:
    def test_rows_for_each_dataset(self):
        result = run_experiment("table2", datasets=MSG, scale=SCALE)
        assert set(result.data) == set(MSG)
        for row in result.data.values():
            assert row["events"] > 0
            assert 0 < row["unique_ts_fraction"] <= 1


class TestTable3:
    def test_restriction_removes_majority(self):
        result = run_experiment("table3", datasets=MSG, scale=SCALE)
        for name in MSG:
            assert result.data[name]["survival"] < 0.5

    def test_restricted_counts_are_subsets(self):
        result = run_experiment("table3", datasets=MSG, scale=SCALE)
        for name in MSG:
            non = result.data[name]["non_consecutive"]
            cons = result.data[name]["consecutive"]
            for code, n in cons.items():
                assert n <= non.get(code, 0)


class TestTable4:
    def test_bitcoin_row_exactly_zero(self):
        result = run_experiment("table4", datasets=["bitcoin-otc"], scale=0.5)
        assert result.data["bitcoin-otc"]["variance"] == 0.0
        assert all(
            v == 0.0 for v in result.data["bitcoin-otc"]["changes"].values()
        )

    def test_cdg_counts_are_subsets(self):
        result = run_experiment("table4", datasets=MSG, scale=SCALE)
        for name in MSG:
            vanilla = result.data[name]["vanilla"]
            cdg = result.data[name]["cdg"]
            for code, n in cdg.items():
                assert n <= vanilla.get(code, 0)

    def test_delayed_repetition_loses_share_in_messages(self):
        result = run_experiment("table4", datasets=["sms-copenhagen"], scale=0.5)
        changes = result.data["sms-copenhagen"]["changes"]
        assert changes["010201"] <= 0
        assert changes["010102"] >= 0


class TestTable5:
    def test_counts_monotone_and_rpio_dominant(self):
        result = run_experiment("table5", datasets=["sms-copenhagen"], scale=0.5)
        groups = result.data["sms-copenhagen"]
        w = groups["only-ΔW"]
        both = groups["ΔC/ΔW=0.66"]
        c = groups["only-ΔC"]
        for key in ("RPIO", "CW"):
            assert w[key] >= both[key] >= c[key]
        assert w["RPIO"] > 5 * w["CW"]

    def test_rpio_reduced_at_least_as_much_as_cw(self):
        result = run_experiment("table5", datasets=["sms-copenhagen"], scale=1.0)
        groups = result.data["sms-copenhagen"]
        w, c = groups["only-ΔW"], groups["only-ΔC"]
        rpio_ratio = c["RPIO"] / max(w["RPIO"], 1)
        cw_ratio = c["CW"] / max(w["CW"], 1)
        assert rpio_ratio <= cw_ratio + 0.02


class TestFigures:
    def test_figure3_shares_sum_to_one(self):
        result = run_experiment(
            "figure3",
            datasets=["stackoverflow"],
            scale=SCALE,
            n_events_list=(3,),
        )
        for per_config in result.data["stackoverflow"]["3e"].values():
            assert sum(per_config.values()) == pytest.approx(1.0, abs=1e-9)

    def test_figure4_skew_shrinks_with_delta_c(self):
        result = run_experiment(
            "figure4", panels=(("sms-copenhagen", "010102"),), scale=1.0
        )
        panel = result.data["sms-copenhagen:010102"]
        assert abs(panel["only-ΔC"]["skew"]) <= abs(panel["only-ΔW"]["skew"]) + 0.02

    def test_figure5_uniformity_increases_toward_only_w(self):
        result = run_experiment(
            "figure5", datasets=["sms-copenhagen"], scale=1.0
        )
        per_config = result.data["sms-copenhagen"]
        assert (
            per_config["only-ΔW"]["uniformity"]
            >= per_config["only-ΔC"]["uniformity"] - 0.02
        )

    def test_figure6_matrix_shape_and_asymmetry(self):
        result = run_experiment("figure6", datasets=["sms-copenhagen"], scale=0.5)
        entry = result.data["sms-copenhagen"]
        matrix = entry["matrix"]
        assert len(matrix) == 6 and all(len(row) == 6 for row in matrix)
        # convey→out-burst preferred over out-burst→convey
        assert entry["asymmetries"]["C_then_O_vs_O_then_C"] > 0


class TestAppendixTables:
    def test_table6_covers_all_32_motifs(self):
        result = run_experiment("table6", datasets=MSG, scale=SCALE)
        for changes in result.data["rank_changes"].values():
            assert len(changes) == 32

    def test_table7_changes_sum_to_zero(self):
        result = run_experiment("table7", datasets=MSG, scale=SCALE)
        for changes in result.data["proportion_changes"].values():
            assert sum(changes.values()) == pytest.approx(0.0, abs=1e-6)


class TestNullModels:
    def test_dilemma_direction(self):
        result = run_experiment(
            "nullmodels", datasets=["sms-copenhagen"], scale=0.3, n_null=3
        )
        entry = result.data["sms-copenhagen"]
        loose = entry["loose (P(t))"]
        restrictive = entry["restrictive (P(Δt))"]
        assert loose["count_shift"] > restrictive["count_shift"]
        assert loose["flagged_fraction"] >= restrictive["flagged_fraction"]


class TestRunner:
    def test_text_reports_are_nonempty(self):
        for eid in ("table1", "figure1"):
            result = run_experiment(eid)
            assert result.title in result.text

    def test_run_all_smoke(self):
        results = run_all(datasets=["sms-copenhagen"], scale=0.1)
        assert len(results) == len(EXPERIMENTS)
