"""Tests for the report generator and the experiments CLI."""

import pytest

pytest.importorskip("numpy", reason="the experiment runner needs numpy-seeded datasets")

from repro.experiments.__main__ import main as cli_main
from repro.experiments.options import OPTION_SPECS, option_names, run_kwargs
from repro.experiments.report import DEFAULT_ORDER, build_report, write_report
from repro.experiments.runner import EXPERIMENTS


class TestReport:
    def test_default_order_covers_all_experiments(self):
        assert set(DEFAULT_ORDER) == set(EXPERIMENTS)

    def test_build_report_sections(self):
        text = build_report(["table1", "figure1"])
        assert "# Reproduction report" in text
        assert "## Table 1" in text
        assert "## Figure 1" in text
        assert "```text" in text
        assert "python -m repro.experiments table1" in text

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            build_report(["table1", "nope"])

    def test_write_report(self, tmp_path):
        path = write_report(
            tmp_path / "report.md",
            ["table3"],
            scale=0.1,
            datasets=["sms-copenhagen"],
        )
        content = path.read_text()
        assert "Table 3" in content
        assert "sms-copenhagen" in content


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in EXPERIMENTS:
            assert eid in out

    def test_run_conceptual_experiment(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "[done in" in out

    def test_run_with_scale_and_datasets(self, capsys):
        code = cli_main(
            ["table2", "--scale", "0.05", "--datasets", "sms-copenhagen"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sms-copenhagen" in out

    def test_stream_experiment_with_window_flag(self, capsys):
        code = cli_main(
            ["stream", "--scale", "0.1", "--window", "9000",
             "--datasets", "sms-copenhagen"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "W=9000s" in out
        assert "events/s" in out
        assert "parity vs batch recount: ok" in out

    def test_window_flag_is_inert_elsewhere(self, capsys):
        """--window forwards into every experiment's **_ignored sink."""
        code = cli_main(
            ["table2", "--scale", "0.05", "--window", "9000",
             "--datasets", "sms-copenhagen"]
        )
        assert code == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment_exits_2(self, capsys):
        assert cli_main(["table99"]) == 2
        err = capsys.readouterr().err
        assert "known experiments" in err

    def test_jobs_flag_runs_experiment_sharded(self, capsys):
        code = cli_main(
            ["table3", "--jobs", "2", "--scale", "0.05",
             "--datasets", "sms-copenhagen"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_jobs_flag_matches_serial_output(self, capsys):
        args = ["table2", "--scale", "0.05", "--datasets", "sms-copenhagen"]
        assert cli_main(args) == 0
        serial_out = capsys.readouterr().out
        assert cli_main(args + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # identical up to the trailing wall-clock line
        def strip(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("[done in")
            ]

        assert strip(parallel_out) == strip(serial_out)

    def test_help_documents_jobs(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["--help"])
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "REPRO_JOBS" in out

    def test_help_documents_every_shared_option(self, capsys):
        """--help lists exactly the shared option spec (one registration path)."""
        with pytest.raises(SystemExit):
            cli_main(["--help"])
        out = capsys.readouterr().out
        for flag, _spec in OPTION_SPECS:
            assert flag in out
        assert "--stats" in out and "--stats-json" in out

    def test_stream_stats_flag_prints_per_layer_table(self, capsys):
        code = cli_main(
            ["stream", "--scale", "0.1", "--window", "6000",
             "--datasets", "sms-copenhagen", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "observability stats" in out
        assert "[online]" in out
        assert "online.push.seconds" in out
        assert "online.prefix_store.entries" in out
        assert "online.expiry_heap.depth" in out
        assert "[stats 100%] push p50=" in out  # the rolling sections

    def test_stats_json_writes_snapshot(self, tmp_path, capsys):
        import json

        path = tmp_path / "stats.json"
        code = cli_main(
            ["stream", "--scale", "0.1", "--window", "6000",
             "--datasets", "sms-copenhagen", "--stats-json", str(path)]
        )
        assert code == 0
        snap = json.loads(path.read_text())
        assert snap["histograms"]["online.push.seconds"]["count"] > 0

    def test_stats_flag_restores_null_recorder(self):
        import repro.obs as obs

        cli_main(
            ["stream", "--scale", "0.1", "--window", "6000",
             "--datasets", "sms-copenhagen", "--stats"]
        )
        assert obs.ACTIVE is None


class TestSharedOptions:
    def test_option_names_cover_run_and_harness_kwargs(self):
        names = option_names()
        assert set(names) >= {"scale", "datasets", "window", "jobs",
                              "stats", "stats_json"}

    def test_run_kwargs_drops_unset_options(self):
        assert run_kwargs({"window": 9000.0, "jobs": None}) == {"window": 9000.0}

    def test_report_rejects_unknown_option(self):
        with pytest.raises(TypeError, match="unknown report options"):
            build_report(["table1"], nope=True)

    def test_report_accepts_stats_and_appends_section(self, tmp_path):
        text = build_report(
            ["stream"],
            scale=0.1,
            datasets=["sms-copenhagen"],
            window=6000.0,
            stats=True,
            stats_json=str(tmp_path / "report_stats.json"),
        )
        assert "## Observability" in text
        assert "online.push.seconds" in text
        assert (tmp_path / "report_stats.json").exists()

    def test_report_forwards_jobs(self):
        text = build_report(
            ["table2"], scale=0.05, datasets=["sms-copenhagen"], jobs=2
        )
        assert "Table 2" in text
