"""Tests for sampling-based approximate counting."""

import pytest

np = pytest.importorskip("numpy")

from repro.algorithms.counting import count_motifs
from repro.algorithms.sampling import (
    estimate_counts_root_sampling,
    estimate_counts_window_sampling,
    relative_error,
)
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph


class TestRootSampling:
    def test_q_one_is_exact(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        exact = count_motifs(small_sms, 3, constraints, max_nodes=3)
        estimate = estimate_counts_root_sampling(
            small_sms, 3, constraints, q=1.0, max_nodes=3
        )
        assert {c: float(n) for c, n in exact.items()} == estimate

    def test_rejects_bad_q(self, small_sms):
        constraints = TimingConstraints.only_c(100)
        for q in (0, -0.5, 1.5):
            with pytest.raises(ValueError):
                estimate_counts_root_sampling(small_sms, 3, constraints, q=q)

    def test_empty_graph(self):
        estimate = estimate_counts_root_sampling(
            TemporalGraph([]), 3, TimingConstraints.only_c(10), q=0.5
        )
        assert estimate == {}

    def test_estimates_scaled_by_inverse_q(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        estimate = estimate_counts_root_sampling(
            small_sms,
            3,
            constraints,
            q=0.5,
            max_nodes=3,
            rng=np.random.default_rng(0),
        )
        # every estimated value is raw/0.5, i.e. a multiple of 2
        assert all(v == int(v) and int(v) % 2 == 0 for v in estimate.values())

    def test_unbiasedness_over_replicates(self, small_sms):
        """Mean estimate over seeds ≈ exact total (Horvitz–Thompson)."""
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        exact_total = sum(
            count_motifs(small_sms, 3, constraints, max_nodes=3).values()
        )
        totals = []
        for seed in range(12):
            est = estimate_counts_root_sampling(
                small_sms,
                3,
                constraints,
                q=0.3,
                max_nodes=3,
                rng=np.random.default_rng(seed),
            )
            totals.append(sum(est.values()))
        mean = np.mean(totals)
        assert abs(mean - exact_total) / max(exact_total, 1) < 0.25

    def test_accuracy_improves_with_q(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        exact = count_motifs(small_sms, 3, constraints, max_nodes=3)

        def err(q):
            errors = []
            for seed in range(6):
                est = estimate_counts_root_sampling(
                    small_sms,
                    3,
                    constraints,
                    q=q,
                    max_nodes=3,
                    rng=np.random.default_rng(seed),
                )
                errors.append(relative_error(exact, est))
            return np.mean(errors)

        assert err(0.8) < err(0.1) + 0.05  # generous slack for tiny samples


class TestWindowSampling:
    def test_q_one_is_exact(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        exact = count_motifs(small_sms, 3, constraints, max_nodes=3)
        estimate = estimate_counts_window_sampling(
            small_sms, 3, constraints, window=3600, q=1.0, max_nodes=3
        )
        assert {c: float(n) for c, n in exact.items()} == estimate

    def test_rejects_bad_window(self, small_sms):
        with pytest.raises(ValueError):
            estimate_counts_window_sampling(
                small_sms, 3, TimingConstraints.only_c(100), window=0, q=0.5
            )

    def test_rejects_bad_q(self, small_sms):
        with pytest.raises(ValueError):
            estimate_counts_window_sampling(
                small_sms, 3, TimingConstraints.only_c(100), window=100, q=0
            )

    def test_empty_graph(self):
        estimate = estimate_counts_window_sampling(
            TemporalGraph([]), 3, TimingConstraints.only_c(10), window=10, q=0.5
        )
        assert estimate == {}


class TestParallelSampling:
    """The estimators route through the parallel engine (``jobs=``)."""

    def test_root_sampling_jobs_parity(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        serial = estimate_counts_root_sampling(
            small_sms, 3, constraints, q=0.4, max_nodes=3,
            rng=np.random.default_rng(11), jobs=1
        )
        sharded = estimate_counts_root_sampling(
            small_sms, 3, constraints, q=0.4, max_nodes=3,
            rng=np.random.default_rng(11), jobs=4
        )
        # Bit-identical, key order included: sampled roots are ascending,
        # so shards partition them exactly like the full search.
        assert sharded == serial
        assert list(sharded) == list(serial)

    def test_window_sampling_jobs_parity(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        serial = estimate_counts_window_sampling(
            small_sms, 3, constraints, window=1800, q=0.5, max_nodes=3,
            rng=np.random.default_rng(13), jobs=1
        )
        sharded = estimate_counts_window_sampling(
            small_sms, 3, constraints, window=1800, q=0.5, max_nodes=3,
            rng=np.random.default_rng(13), jobs=4
        )
        assert sharded == serial
        assert list(sharded) == list(serial)


class TestRelativeError:
    def test_zero_for_identical(self):
        assert relative_error({"a": 10}, {"a": 10.0}) == 0.0

    def test_counts_missing_codes(self):
        assert relative_error({"a": 10}, {}) == 1.0
        assert relative_error({"a": 10}, {"a": 10.0, "b": 5.0}) == 0.5

    def test_empty_exact(self):
        assert relative_error({}, {}) == 0.0
        assert relative_error({}, {"a": 1.0}) == float("inf")
