"""Tests for the fast two-node motif counter, with the engine as oracle."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.counting import count_motifs
from repro.algorithms.fast2node import count_two_node_motifs, two_node_codes
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph


def oracle(graph: TemporalGraph, n_events: int, delta_w: float) -> Counter:
    """Two-node counts via the generic enumeration engine."""
    return Counter(
        count_motifs(
            graph,
            n_events,
            TimingConstraints.only_w(delta_w),
            max_nodes=2,
            node_counts={2},
        )
    )


class TestBasics:
    def test_repetition_chain(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (0, 1, 3), (0, 1, 7)])
        counts = count_two_node_motifs(g, 3, delta_w=10)
        assert counts == Counter({"010101": 1})

    def test_window_prunes(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (0, 1, 3), (0, 1, 7)])
        assert count_two_node_motifs(g, 3, delta_w=6) == Counter()
        assert count_two_node_motifs(g, 2, delta_w=4)["0101"] == 2

    def test_direction_normalization(self):
        """The first event's source becomes node 0 regardless of the
        lo/hi orientation of the pair."""
        g = TemporalGraph.from_tuples([(5, 2, 0), (2, 5, 3)])  # hi→lo then lo→hi
        assert count_two_node_motifs(g, 2, delta_w=10) == Counter({"0110": 1})

    def test_equal_timestamps_never_pair(self):
        g = TemporalGraph.from_tuples([(0, 1, 5), (1, 0, 5)])
        assert count_two_node_motifs(g, 2, delta_w=10) == Counter()

    def test_pairs_filter(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, 0), (0, 1, 2), (4, 5, 0), (4, 5, 2)]
        )
        only = count_two_node_motifs(g, 2, delta_w=10, pairs=[(1, 0)])
        assert only == Counter({"0101": 1})

    def test_rejects_bad_parameters(self, triangle_graph):
        with pytest.raises(ValueError):
            count_two_node_motifs(triangle_graph, 1, delta_w=10)
        with pytest.raises(ValueError):
            count_two_node_motifs(triangle_graph, 3, delta_w=0)

    def test_code_universe(self):
        assert two_node_codes(2) == ("0101", "0110")
        assert len(two_node_codes(3)) == 4
        assert len(two_node_codes(4)) == 8
        from repro.core.notation import motif_codes_with_nodes
        assert set(two_node_codes(3)) == set(motif_codes_with_nodes(3, 2))
        assert set(two_node_codes(4)) == set(motif_codes_with_nodes(4, 2))


class TestAgainstEngine:
    @pytest.mark.parametrize("n_events", [2, 3, 4])
    def test_dataset_agreement(self, small_sms, n_events):
        delta_w = 900.0
        fast = count_two_node_motifs(small_sms, n_events, delta_w)
        assert fast == oracle(small_sms, n_events, delta_w)

    def test_dense_single_pair(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, t) if t % 3 else (1, 0, t) for t in range(1, 40)]
        )
        for k in (2, 3, 4):
            assert count_two_node_motifs(g, k, 10.0) == oracle(g, k, 10.0)


# hypothesis strategy: dense streams on one pair plus noise on another
pair_streams = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 30)),
    min_size=1,
    max_size=16,
)


@given(pair_streams, st.integers(2, 16))
@settings(max_examples=60, deadline=None)
def test_property_agreement_with_engine(stream, delta_w):
    events = [((0, 1) if d == 0 else (1, 0)) + (float(t),) for d, t in stream]
    graph = TemporalGraph.from_tuples(events)
    for k in (2, 3):
        fast = count_two_node_motifs(graph, k, float(delta_w))
        assert fast == oracle(graph, k, float(delta_w))
