"""Unit tests for the event-pair lens."""

import itertools

import pytest

from repro.core.eventpairs import (
    ALL_PAIR_TYPES,
    CW_GROUP,
    RPIO_GROUP,
    PairType,
    classify_pair,
    code_of_pair_sequence,
    is_exactly_representable,
    pair_sequence_of_code,
    pair_sequence_of_events,
)


class TestClassifyPair:
    def test_repetition(self):
        assert classify_pair((0, 1), (0, 1)) is PairType.REPETITION

    def test_ping_pong(self):
        assert classify_pair((0, 1), (1, 0)) is PairType.PING_PONG

    def test_in_burst(self):
        assert classify_pair((0, 1), (2, 1)) is PairType.IN_BURST

    def test_out_burst(self):
        assert classify_pair((0, 1), (0, 2)) is PairType.OUT_BURST

    def test_convey(self):
        assert classify_pair((0, 1), (1, 2)) is PairType.CONVEY

    def test_weakly_connected(self):
        assert classify_pair((0, 1), (2, 0)) is PairType.WEAKLY_CONNECTED

    def test_disjoint_returns_none(self):
        assert classify_pair((0, 1), (2, 3)) is None

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            classify_pair((0, 0), (0, 1))
        with pytest.raises(ValueError):
            classify_pair((0, 1), (2, 2))

    def test_order_matters(self):
        # convey one way, weakly-connected the other.
        assert classify_pair((0, 1), (1, 2)) is PairType.CONVEY
        assert classify_pair((1, 2), (0, 1)) is PairType.WEAKLY_CONNECTED

    def test_exhaustive_on_three_nodes(self):
        """Every ordered pair of loop-free events on ≤3 nodes classifies."""
        nodes = (0, 1, 2)
        edges = [(a, b) for a in nodes for b in nodes if a != b]
        for first, second in itertools.product(edges, repeat=2):
            assert classify_pair(first, second) in ALL_PAIR_TYPES


class TestBijection:
    """Pair sequences ↔ ≤3-node motif codes: the paper's 6^(m−1) facts."""

    def test_36_three_event_codes(self):
        codes = {
            code_of_pair_sequence(seq)
            for seq in itertools.product(ALL_PAIR_TYPES, repeat=2)
        }
        assert len(codes) == 36

    def test_216_four_event_codes(self):
        codes = {
            code_of_pair_sequence(seq)
            for seq in itertools.product(ALL_PAIR_TYPES, repeat=3)
        }
        assert len(codes) == 216

    def test_roundtrip_three_event(self):
        for seq in itertools.product(ALL_PAIR_TYPES, repeat=2):
            code = code_of_pair_sequence(seq)
            assert pair_sequence_of_code(code) == seq

    def test_roundtrip_four_event(self):
        for seq in itertools.product(ALL_PAIR_TYPES, repeat=3):
            code = code_of_pair_sequence(seq)
            assert pair_sequence_of_code(code) == seq

    def test_codes_stay_on_three_nodes(self):
        for seq in itertools.product(ALL_PAIR_TYPES, repeat=3):
            code = code_of_pair_sequence(seq)
            assert len(set(code)) <= 3

    def test_paper_figure2_examples(self):
        # repetition then out-burst -> 010102 (bottom-left of Figure 2).
        assert code_of_pair_sequence(
            [PairType.REPETITION, PairType.OUT_BURST]
        ) == "010102"
        # repetition, convey, ping-pong -> 01011221.
        assert code_of_pair_sequence(
            [PairType.REPETITION, PairType.CONVEY, PairType.PING_PONG]
        ) == "01011221"

    def test_empty_sequence_is_single_event(self):
        assert code_of_pair_sequence([]) == "01"


class TestPairSequences:
    def test_sequence_of_code(self):
        assert pair_sequence_of_code("010102") == (
            PairType.REPETITION,
            PairType.OUT_BURST,
        )

    def test_sequence_with_disjoint_pair(self):
        # 4-node motif 01021323? build one with a disjoint consecutive pair:
        # (0,1), (2,3) share no node — not single-component, so craft via
        # 01 02 13: events (0,1),(0,2),(1,3): pairs O then disjoint? (0,2),(1,3)
        seq = pair_sequence_of_code("010213")
        assert seq[0] is PairType.OUT_BURST
        assert seq[1] is None

    def test_sequence_of_events(self):
        events = [(0, 1, 1.0), (1, 0, 2.0), (1, 0, 3.0)]
        assert pair_sequence_of_events(events) == (
            PairType.PING_PONG,
            PairType.REPETITION,
        )

    def test_exact_representability(self):
        assert is_exactly_representable("010102")
        assert not is_exactly_representable("01122334")


class TestGroups:
    def test_groups_partition_alphabet(self):
        assert RPIO_GROUP | CW_GROUP == set(ALL_PAIR_TYPES)
        assert not RPIO_GROUP & CW_GROUP

    def test_pair_type_letters(self):
        assert [p.value for p in ALL_PAIR_TYPES] == ["R", "P", "I", "O", "C", "W"]

    def test_descriptions_present(self):
        for ptype in ALL_PAIR_TYPES:
            assert ptype.description
