"""Tests for the counting APIs and the one-pass census."""

from collections import Counter

from repro.algorithms.counting import (
    count_event_pairs,
    count_motifs,
    merge_counters,
    run_census,
    total_instances,
)
from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import PairType
from repro.core.temporal_graph import TemporalGraph


class TestCountMotifs:
    def test_triangle(self, triangle_graph, loose):
        counts = count_motifs(triangle_graph, 3, loose)
        assert counts == Counter({"011202": 1})

    def test_node_counts_filter(self, conversation_graph, loose):
        all_counts = count_motifs(conversation_graph, 2, loose)
        two_node = count_motifs(conversation_graph, 2, loose, node_counts={2})
        assert sum(two_node.values()) < sum(all_counts.values())
        assert all(len(set(code)) == 2 for code in two_node)

    def test_predicate_reduces_counts(self, conversation_graph, loose):
        vanilla = count_motifs(conversation_graph, 3, loose, max_nodes=3)
        restricted = count_motifs(
            conversation_graph,
            3,
            loose,
            max_nodes=3,
            predicate=lambda g, i: i[0] == 0,
        )
        assert sum(restricted.values()) <= sum(vanilla.values())

    def test_repetition_code(self):
        g = TemporalGraph.from_tuples([(5, 9, 0), (5, 9, 3), (5, 9, 7)])
        counts = count_motifs(g, 3, TimingConstraints.only_c(10))
        assert counts == Counter({"010101": 1})


class TestCountEventPairs:
    def test_triangle_pairs(self, triangle_graph, loose):
        pairs = count_event_pairs(triangle_graph, 3, loose)
        assert pairs == Counter({PairType.CONVEY: 1, PairType.IN_BURST: 1})

    def test_pair_total_is_instances_times_m_minus_1(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        pairs = count_event_pairs(small_sms, 3, constraints, max_nodes=3)
        instances = total_instances(small_sms, 3, constraints, max_nodes=3)
        assert sum(pairs.values()) == 2 * instances


class TestCensus:
    def test_census_matches_individual_counters(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        census = run_census(small_sms, 3, constraints, max_nodes=3)
        assert census.code_counts == count_motifs(
            small_sms, 3, constraints, max_nodes=3
        )
        assert census.pair_counts == count_event_pairs(
            small_sms, 3, constraints, max_nodes=3
        )
        assert census.total == sum(census.code_counts.values())

    def test_pair_sequences_sum_to_total(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        census = run_census(small_sms, 3, constraints, max_nodes=3)
        assert sum(census.pair_sequence_counts.values()) == census.total

    def test_sequences_consistent_with_codes(self, triangle_graph, loose):
        census = run_census(triangle_graph, 3, loose)
        assert census.pair_sequence_counts == Counter(
            {(PairType.CONVEY, PairType.IN_BURST): 1}
        )

    def test_timespan_collection(self, triangle_graph, loose):
        census = run_census(
            triangle_graph, 3, loose, collect_timespans=True
        )
        assert census.timespans["011202"] == [15]

    def test_timespan_code_filter(self, conversation_graph, loose):
        census = run_census(
            conversation_graph,
            3,
            loose,
            max_nodes=3,
            collect_timespans=True,
            timespan_codes=["010102"],
        )
        assert set(census.timespans) <= {"010102"}

    def test_position_collection(self, triangle_graph, loose):
        census = run_census(
            triangle_graph, 3, loose, collect_positions=True
        )
        positions = census.intermediate_positions["011202"]
        # second event at t=20 of window [10, 25] -> (20-10)/15
        assert positions == [(1, (20 - 10) / 15)]

    def test_sample_cap_respected(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        census = run_census(
            small_sms,
            3,
            constraints,
            max_nodes=3,
            collect_timespans=True,
            sample_cap=5,
        )
        assert all(len(v) <= 5 for v in census.timespans.values())

    def test_codes_with_nodes(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        census = run_census(small_sms, 3, constraints, max_nodes=3)
        three = census.codes_with_nodes(3)
        two = census.codes_with_nodes(2)
        assert sum(three.values()) + sum(two.values()) == census.total

    def test_proportions_sum_to_one(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        census = run_census(small_sms, 3, constraints, max_nodes=3)
        props = census.proportions()
        assert abs(sum(props.values()) - 1.0) < 1e-9

    def test_empty_census(self, loose):
        census = run_census(TemporalGraph([]), 3, loose)
        assert census.total == 0
        assert census.proportions() == {}
        assert census.pair_group_counts() == {
            "RPIO": 0,
            "CW": 0,
            "mixed": 0,
            "disjoint": 0,
        }


class TestPairGroups:
    def test_pure_rpio_motif(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (0, 1, 3), (0, 2, 6)])
        census = run_census(g, 3, TimingConstraints.only_c(10))
        assert census.pair_group_counts()["RPIO"] == 1

    def test_pure_cw_motif(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 2, 3), (2, 0, 6)])
        census = run_census(g, 3, TimingConstraints.only_c(10))
        assert census.pair_group_counts()["CW"] == 1

    def test_mixed_motif(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (0, 1, 3), (1, 2, 6)])
        census = run_census(g, 3, TimingConstraints.only_c(10))
        groups = census.pair_group_counts()
        assert groups["mixed"] == 1
        assert groups["RPIO"] == 0
        assert groups["CW"] == 0

    def test_groups_sum_to_total(self, small_sms):
        constraints = TimingConstraints(delta_c=300, delta_w=600)
        census = run_census(small_sms, 3, constraints, max_nodes=3)
        assert sum(census.pair_group_counts().values()) == census.total


class TestHelpers:
    def test_total_instances(self, triangle_graph, loose):
        assert total_instances(triangle_graph, 3, loose) == 1

    def test_merge_counters(self):
        merged = merge_counters([Counter({"a": 1}), Counter({"a": 2, "b": 3})])
        assert merged == Counter({"a": 3, "b": 3})
