"""Tests for durative event I/O and the Hulovatyy duration pathway."""

import pytest

from repro.core.events import DurativeEvent
from repro.datasets.durative import (
    attach_call_durations,
    read_durative_event_list,
    split_durative,
    write_durative_event_list,
)
from repro.models import HulovatyyModel


class TestSplitDurative:
    def test_graph_and_durations_align(self):
        events = [
            DurativeEvent(1, 2, 10.0, 30.0),
            DurativeEvent(0, 1, 0.0, 5.0),
        ]
        graph, durations = split_durative(events)
        assert [ev.t for ev in graph.events] == [0.0, 10.0]
        assert durations == {0: 5.0, 1: 30.0}

    def test_feeds_hulovatyy_model(self):
        # gap start-to-start is 10 > ΔC=5; end-to-start is 10-6=4 <= 5.
        events = [
            DurativeEvent(0, 1, 0.0, 6.0),
            DurativeEvent(1, 2, 10.0, 1.0),
        ]
        graph, durations = split_durative(events)
        assert not HulovatyyModel(5).is_valid_instance(graph, (0, 1))
        model = HulovatyyModel(5, durations=durations)
        assert model.is_valid_instance(graph, (0, 1))

    def test_empty(self):
        graph, durations = split_durative([])
        assert len(graph) == 0
        assert durations == {}


class TestIO:
    def test_roundtrip(self, tmp_path):
        events = [
            DurativeEvent(0, 1, 0.0, 5.0),
            DurativeEvent(1, 2, 10.0, 2.5),
        ]
        path = tmp_path / "calls.txt"
        write_durative_event_list(events, path)
        back = read_durative_event_list(path)
        assert back == events

    def test_integral_formatting(self, tmp_path):
        path = tmp_path / "calls.txt"
        write_durative_event_list([DurativeEvent(0, 1, 5.0, 30.0)], path)
        body = [ln for ln in path.read_text().splitlines() if not ln.startswith("#")]
        assert body == ["0 1 5 30"]

    def test_malformed_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 5\n")
        with pytest.raises(ValueError, match=":1"):
            read_durative_event_list(path)

    def test_unparsable_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b c d\n")
        with pytest.raises(ValueError, match=":1"):
            read_durative_event_list(path)


class TestAttachDurations:
    def test_every_event_gets_a_duration(self, small_sms):
        g = small_sms.head(200)
        durative = attach_call_durations(g, seed=0)
        assert len(durative) == len(g)
        assert all(ev.duration >= 0 for ev in durative)

    def test_calls_never_overlap_own_redial(self, small_sms):
        g = small_sms.head(300)
        durative = attach_call_durations(g, mean_duration=1e6, seed=1)
        by_edge: dict[tuple[int, int], list[DurativeEvent]] = {}
        for ev in durative:
            by_edge.setdefault(ev.edge, []).append(ev)
        for chain in by_edge.values():
            chain.sort(key=lambda e: e.t)
            for a, b in zip(chain, chain[1:]):
                assert a.end <= b.t + 1e-9

    def test_deterministic_with_seed(self, small_sms):
        g = small_sms.head(50)
        assert attach_call_durations(g, seed=3) == attach_call_durations(g, seed=3)

    def test_rejects_bad_mean(self, small_sms):
        with pytest.raises(ValueError):
            attach_call_durations(small_sms, mean_duration=0)
