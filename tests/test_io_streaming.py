"""Tests for gzip-compressed and streaming event-list I/O."""

import gzip

import pytest

from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.io import (
    iter_event_list,
    read_event_list,
    roundtrip,
    write_event_list,
)


class TestGzip:
    def test_roundtrip_gz(self, tmp_path, triangle_graph):
        back = roundtrip(triangle_graph, tmp_path / "g.txt.gz")
        assert back.events == triangle_graph.events

    def test_gz_file_is_actually_compressed(self, tmp_path, small_sms):
        plain = tmp_path / "sms.txt"
        packed = tmp_path / "sms.txt.gz"
        write_event_list(small_sms, plain)
        write_event_list(small_sms, packed)
        assert packed.stat().st_size < plain.stat().st_size / 2
        # and it really is gzip on disk, not a misnamed text file
        with gzip.open(packed, "rt") as handle:
            assert handle.readline().startswith("#")

    def test_gz_and_plain_read_identically(self, tmp_path, small_sms):
        plain = tmp_path / "sms.txt"
        packed = tmp_path / "sms.txt.gz"
        write_event_list(small_sms, plain)
        write_event_list(small_sms, packed)
        assert read_event_list(packed).events == read_event_list(plain).events

    def test_gz_name_strips_both_suffixes(self, tmp_path, triangle_graph):
        path = tmp_path / "mygraph.txt.gz"
        write_event_list(triangle_graph, path)
        assert read_event_list(path).name == "mygraph"

    def test_gz_malformed_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1 5\n0 1\n")
        with pytest.raises(ValueError, match=":2"):
            read_event_list(path)


class TestIterEventList:
    def test_streams_lazily(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n0 1 5\n\n1 2 9\n")
        stream = iter_event_list(path)
        assert next(stream) == Event(0, 1, 5.0)
        assert next(stream) == Event(1, 2, 9.0)
        with pytest.raises(StopIteration):
            next(stream)

    def test_feeds_graph_without_intermediate_list(self, tmp_path, triangle_graph):
        path = tmp_path / "g.txt"
        write_event_list(triangle_graph, path)
        g = TemporalGraph(iter_event_list(path), name="streamed")
        assert g.events == triangle_graph.events

    def test_read_with_explicit_backend(self, tmp_path, triangle_graph):
        path = tmp_path / "g.txt.gz"
        write_event_list(triangle_graph, path)
        g = read_event_list(path, backend="columnar")
        assert g.backend == "columnar"
        assert g.events == triangle_graph.events
