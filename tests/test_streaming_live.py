"""Tests for live-graph streaming: ``match_live`` and the shed counter."""

import pytest

from repro.algorithms.pattern import EventPattern, PatternEvent, chain_pattern
from repro.algorithms.streaming import StreamMatcher, match_graph, match_live
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


class TestShedCounter:
    def test_shed_starts_at_zero(self):
        assert StreamMatcher(chain_pattern(2), delta_w=10).shed == 0

    def test_shed_counts_dropped_partials(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=1e9, max_partials=3)
        for k in range(10):
            matcher.push(Event(2 * k + 10, 2 * k + 11, float(k)))
        # each push adds one fresh partial; beyond the cap of 3 every
        # arrival sheds exactly one of the oldest
        assert matcher.shed == 7
        assert matcher.live_partials == 3

    def test_shedding_loses_matches_and_reports_it(self):
        """The valve is lossy — and the counter is the only witness."""
        pattern = chain_pattern(2, total=True)
        events = [Event(0, k + 1, float(k)) for k in range(6)]
        events += [Event(k + 1, 99, 50.0 + k) for k in range(6)]
        lossless = StreamMatcher(pattern, delta_w=1e9)
        lossy = StreamMatcher(pattern, delta_w=1e9, max_partials=2)
        n_full = sum(len(lossless.push(ev)) for ev in events)
        n_lossy = sum(len(lossy.push(ev)) for ev in events)
        assert lossless.shed == 0
        assert lossy.shed > 0
        assert n_lossy < n_full

    def test_no_shedding_when_disabled(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=1e9, max_partials=None)
        for k in range(50):
            matcher.push(Event(2 * k + 10, 2 * k + 11, float(k)))
        assert matcher.shed == 0
        assert matcher.live_partials == 50

    def test_expiry_is_not_shedding(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=5, max_partials=100)
        matcher.push(Event(0, 1, 0.0))
        matcher.push(Event(5, 6, 100.0))  # first partial expires
        assert matcher.live_partials == 1
        assert matcher.shed == 0


class TestMatchLive:
    def test_grows_graph_and_matches_in_one_pass(self):
        graph = TemporalGraph([])
        stream = [Event(0, 1, 0.0), Event(1, 2, 5.0), Event(2, 3, 9.0)]
        results = list(match_live(graph, chain_pattern(2), 100, stream))
        assert [idx for idx, _ in results] == [0, 1, 2]
        assert len(graph) == 3
        assert graph.events == tuple(stream)
        matches = [m for _, found in results for m in found]
        assert len(matches) == 2  # (0→1,1→2) and (1→2,2→3)

    def test_match_indices_resolve_against_live_graph(self):
        graph = TemporalGraph([])
        stream = [Event(0, 1, 0.0), Event(1, 2, 5.0)]
        for idx, found in match_live(graph, chain_pattern(2), 100, stream):
            assert graph.events[idx].t == stream[idx].t
            for match in found:
                assert match.events[-1] == graph.events[idx]

    def test_appends_onto_existing_history(self):
        graph = TemporalGraph.from_tuples([(0, 1, 0.0)])
        results = list(match_live(graph, chain_pattern(2), 100, [Event(1, 2, 5.0)]))
        assert results[0][0] == 1  # index continues the existing stream
        assert len(graph) == 2
        # history pushed before going live is the caller's job: the lone
        # live event cannot complete a chain on its own
        assert results[0][1] == []

    def test_accepts_prepared_matcher_with_state(self):
        graph = TemporalGraph.from_tuples([(0, 1, 0.0)])
        matcher = StreamMatcher(chain_pattern(2), delta_w=100)
        matcher.push(graph.events[0])  # warm up with history
        results = list(match_live(graph, matcher, events=[Event(1, 2, 5.0)]))
        assert len(results[0][1]) == 1
        assert matcher.emitted == 1

    def test_bare_pattern_requires_delta_w(self):
        with pytest.raises(ValueError, match="delta_w"):
            list(match_live(TemporalGraph([]), chain_pattern(2), None, [Event(0, 1, 1.0)]))

    def test_conflicting_delta_w_with_prepared_matcher_rejected(self):
        matcher = StreamMatcher(chain_pattern(2), delta_w=100)
        with pytest.raises(ValueError, match="conflicting delta_w"):
            list(match_live(TemporalGraph([]), matcher, 5, [Event(0, 1, 1.0)]))
        # the matcher's own window restated explicitly is fine
        assert list(match_live(TemporalGraph([]), matcher, 100, [Event(0, 1, 1.0)]))

    def test_event_at_resolves_arrivals_in_o1(self):
        graph = TemporalGraph([], backend="columnar")
        stream = [Event(0, 1, 0.0), Event(1, 2, 5.0)]
        for idx, _found in match_live(graph, chain_pattern(2), 100, stream):
            assert graph.event_at(idx) == stream[idx]

    def test_out_of_order_stream_rejected_by_append_contract(self):
        graph = TemporalGraph.from_tuples([(0, 1, 10.0)])
        with pytest.raises(ValueError, match="non-decreasing"):
            list(match_live(graph, chain_pattern(2), 100, [Event(1, 2, 5.0)]))

    @pytest.mark.parametrize("backend", ["list", "columnar"])
    def test_live_equals_frozen_matching(self, backend):
        """Growing a graph live yields the same matches as a frozen pass."""
        frozen = TemporalGraph.from_tuples(
            [(0, 1, 0), (1, 2, 4), (0, 2, 6), (2, 3, 9), (3, 0, 12)],
            backend=backend,
        )
        pattern = EventPattern(
            events=[PatternEvent("A", "B"), PatternEvent("B", "C")], order=[(0, 1)]
        )
        live_graph = TemporalGraph([], backend=backend)
        live_matches = [
            m
            for _, found in match_live(live_graph, pattern, 100, frozen.events)
            for m in found
        ]
        assert live_matches == match_graph(frozen, pattern, 100)
        assert live_graph.events == frozen.events
        assert live_graph.node_events == frozen.node_events
