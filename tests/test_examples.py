"""Smoke tests: every example script runs to completion and tells its story."""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("numpy", reason="the examples analyze numpy-seeded datasets")

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> substrings its output must contain
EXPECTED_OUTPUT = {
    "quickstart.py": ["found", "Kovanen et al. [11]", "valid"],
    "fraud_detection.py": ["directed squares", "money loop", "Song (non-induced):      True"],
    "messaging_analysis.py": [
        "ΔC/ΔW sweep",
        "consecutive-events restriction",
        "dominant sequences",
    ],
    "model_comparison.py": ["3n3e instances", "top-5 motifs", "100.0%"],
    "event_prediction.py": ["transition model", "predicted next events"],
    "node_roles.py": ["strong answerers", "strong askers"],
    "live_dashboard.py": [
        "online census",
        "rolling motif mix",
        "events/sec sustained",
        "final window, dominant motifs",
    ],
    "multiview_monitor.py": [
        "multi-view census",
        "views live",
        "backfilled",
        "degraded to sampling estimates",
        "parity vs independent engine: ok",
    ],
    "census_service.py": [
        "census service up",
        "bit-identical to the serial run_census",
        "concurrent window queries answered",
        "push stream",
        "server shut down cleanly",
    ],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs(name):
    stdout = run_example(name)
    for fragment in EXPECTED_OUTPUT[name]:
        assert fragment in stdout, f"{name}: missing {fragment!r}"


def test_all_examples_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)
