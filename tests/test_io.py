"""Tests for event-list I/O."""

import pytest

from repro.core.temporal_graph import TemporalGraph
from repro.datasets.io import read_event_list, roundtrip, write_event_list, write_many


class TestRoundtrip:
    def test_roundtrip_preserves_events(self, tmp_path, triangle_graph):
        back = roundtrip(triangle_graph, tmp_path / "g.txt")
        assert back.events == triangle_graph.events

    def test_roundtrip_dataset(self, tmp_path, small_sms):
        back = roundtrip(small_sms, tmp_path / "sms.txt")
        assert back.events == small_sms.events

    def test_integral_times_written_as_ints(self, tmp_path, triangle_graph):
        path = tmp_path / "g.txt"
        write_event_list(triangle_graph, path)
        body = [ln for ln in path.read_text().splitlines() if not ln.startswith("#")]
        assert body[0] == "0 1 10"

    def test_float_times_preserved(self, tmp_path):
        g = TemporalGraph.from_tuples([(0, 1, 1.5)])
        back = roundtrip(g, tmp_path / "g.txt")
        assert back.events[0].t == 1.5

    def test_header_optional(self, tmp_path, triangle_graph):
        path = tmp_path / "g.txt"
        write_event_list(triangle_graph, path, header=False)
        assert not path.read_text().startswith("#")


class TestRead:
    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1 5\n# another\n1 2 9\n")
        g = read_event_list(path)
        assert len(g) == 2

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1 5\n")
        assert read_event_list(path).name == "mygraph"

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 5\n")
        assert read_event_list(path, name="other").name == "other"

    def test_malformed_line_reports_lineno(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 5\n0 1\n")
        with pytest.raises(ValueError, match=":2"):
            read_event_list(path)

    def test_unparsable_values_reports_lineno(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b c\n")
        with pytest.raises(ValueError, match=":1"):
            read_event_list(path)


class TestWriteMany:
    def test_writes_named_files(self, tmp_path):
        graphs = [
            TemporalGraph.from_tuples([(0, 1, 1)], name="one"),
            TemporalGraph.from_tuples([(1, 2, 2)], name="two"),
        ]
        paths = write_many(graphs, tmp_path / "data")
        assert [p.name for p in paths] == ["one.txt", "two.txt"]
        assert all(p.exists() for p in paths)

    def test_requires_names(self, tmp_path):
        with pytest.raises(ValueError):
            write_many([TemporalGraph.from_tuples([(0, 1, 1)])], tmp_path)
