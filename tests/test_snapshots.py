"""Tests for the snapshot-sequence representation."""

import pytest

from repro.core.snapshots import (
    edge_persistence,
    iter_active_snapshots,
    resolution_collision_rate,
    snapshot_activity_profile,
    snapshot_sequence,
)
from repro.core.temporal_graph import TemporalGraph


@pytest.fixture
def graph() -> TemporalGraph:
    return TemporalGraph.from_tuples(
        [
            (0, 1, 0),
            (1, 2, 5),  # bin 0
            (0, 1, 12),  # bin 1: edge (0,1) persists
            # bin 2 empty
            (2, 0, 35),  # bin 3
        ]
    )


class TestSnapshotSequence:
    def test_bin_count_and_alignment(self, graph):
        snaps = snapshot_sequence(graph, width=10)
        assert len(snaps) == 4
        assert snaps[0].t_start == 0
        assert snaps[3].t_end == 40

    def test_edges_per_bin(self, graph):
        snaps = snapshot_sequence(graph, width=10)
        assert snaps[0].edges == {(0, 1), (1, 2)}
        assert snaps[1].edges == {(0, 1)}
        assert snaps[2].edges == frozenset()
        assert snaps[3].edges == {(2, 0)}

    def test_event_counts(self, graph):
        snaps = snapshot_sequence(graph, width=10)
        assert [s.n_events for s in snaps] == [2, 1, 0, 1]

    def test_nodes_accessor(self, graph):
        snaps = snapshot_sequence(graph, width=10)
        assert snaps[0].nodes == {0, 1, 2}
        assert snaps[2].nodes == set()

    def test_empty_graph(self):
        assert snapshot_sequence(TemporalGraph([]), width=10) == []

    def test_rejects_bad_width(self, graph):
        with pytest.raises(ValueError):
            snapshot_sequence(graph, width=0)

    def test_active_iterator_skips_empty(self, graph):
        active = list(iter_active_snapshots(graph, width=10))
        assert [s.index for s in active] == [0, 1, 3]


class TestPersistence:
    def test_persistent_edge_detected(self, graph):
        # bin1 repeats (0,1) from bin0 (fraction 1); bin3 shares nothing
        # with bin1 (fraction 0) -> mean 0.5
        assert edge_persistence(graph, width=10) == pytest.approx(0.5)

    def test_no_persistence_for_single_snapshot(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (1, 2, 3)])
        assert edge_persistence(g, width=100) == 0.0

    def test_repetitive_network_is_persistent(self):
        g = TemporalGraph.from_tuples(
            [(0, 1, float(t)) for t in range(0, 100, 5)]
        )
        assert edge_persistence(g, width=10) == 1.0


class TestProfiles:
    def test_activity_profile(self, graph):
        assert snapshot_activity_profile(graph, width=10) == [2, 1, 0, 1]

    def test_collision_rate_zero_at_fine_resolution(self, graph):
        assert resolution_collision_rate(graph, resolution=1) == 0.0

    def test_collision_rate_grows_with_resolution(self, small_sms):
        fine = resolution_collision_rate(small_sms, resolution=1)
        coarse = resolution_collision_rate(small_sms, resolution=300)
        assert coarse >= fine

    def test_collision_rate_empty(self):
        assert resolution_collision_rate(TemporalGraph([]), resolution=10) == 0.0

    def test_message_network_collides_more_than_sparse(
        self, small_sms, small_bitcoin
    ):
        """The Table-4 preamble mechanism: dense message traffic collides
        at 300 s; sparse ratings barely do."""
        assert resolution_collision_rate(
            small_sms, 300
        ) > resolution_collision_rate(small_bitcoin, 300)
