"""Tests for the activity-model dataset generator."""

import pytest

pytest.importorskip("numpy", reason="the activity generator is numpy-seeded")

from repro.core.eventpairs import PairType, classify_pair
from repro.datasets.generators import ActivityConfig, ActivityModel, generate


def small_config(**overrides) -> ActivityConfig:
    base = dict(
        n_nodes=50,
        n_events=800,
        timespan=100_000.0,
        p_reply=0.4,
        p_repeat=0.3,
        p_cc=0.2,
        p_forward=0.15,
        reaction_mean=60.0,
    )
    base.update(overrides)
    return ActivityConfig(**base)


class TestConfigValidation:
    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError):
            ActivityConfig(n_nodes=1, n_events=10, timespan=100)

    def test_rejects_no_events(self):
        with pytest.raises(ValueError):
            ActivityConfig(n_nodes=5, n_events=0, timespan=100)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            small_config(p_reply=1.5)

    def test_rejects_bad_timespan(self):
        with pytest.raises(ValueError):
            ActivityConfig(n_nodes=5, n_events=10, timespan=0)

    def test_rejects_bad_reaction_mean(self):
        with pytest.raises(ValueError):
            small_config(reaction_mean=0)

    def test_rejects_bad_delay_factor(self):
        with pytest.raises(ValueError):
            small_config(long_delay_factor=0.5)
        with pytest.raises(ValueError):
            small_config(convey_delay_factor=0)
        with pytest.raises(ValueError):
            small_config(p_return=2.0)

    def test_scaled(self):
        cfg = small_config().scaled(0.5)
        assert cfg.n_nodes == 25
        assert cfg.n_events == 400
        assert cfg.timespan == small_config().timespan

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            small_config().scaled(0)

    def test_scaled_minimum_sizes(self):
        cfg = small_config().scaled(0.0001)
        assert cfg.n_nodes >= 2
        assert cfg.n_events >= 1


class TestGeneration:
    def test_event_count_exact(self):
        g = generate(small_config(), seed=1)
        assert len(g) == 800

    def test_deterministic_given_seed(self):
        a = generate(small_config(), seed=7)
        b = generate(small_config(), seed=7)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = generate(small_config(), seed=1)
        b = generate(small_config(), seed=2)
        assert a.events != b.events

    def test_nodes_within_range(self):
        g = generate(small_config(), seed=1)
        assert all(0 <= n < 50 for n in g.nodes)

    def test_no_self_loops(self):
        g = generate(small_config(), seed=3)
        assert not any(ev.is_loop() for ev in g.events)

    def test_times_nonnegative_and_snapped(self):
        g = generate(small_config(), seed=4)
        assert all(ev.t >= 0 for ev in g.events)
        assert all(float(ev.t).is_integer() for ev in g.events)

    def test_named_generation(self):
        g = generate(small_config(), seed=1, name="demo")
        assert g.name == "demo"


class TestMechanisms:
    def _pair_fractions(self, graph, window=600):
        """Fraction of adjacent-in-time event pairs per type (crude probe)."""
        from collections import Counter
        counts: Counter = Counter()
        events = graph.events
        for i in range(len(events) - 1):
            for j in range(i + 1, min(i + 6, len(events))):
                if events[j].t - events[i].t > window:
                    break
                ptype = classify_pair(events[i].edge, events[j].edge)
                if ptype is not None:
                    counts[ptype] += 1
        total = sum(counts.values())
        return {p: counts.get(p, 0) / max(total, 1) for p in PairType}

    def test_reply_heavy_config_yields_ping_pongs(self):
        replies = generate(small_config(p_reply=0.7, p_repeat=0.0, p_cc=0.0,
                                        p_forward=0.0), seed=5)
        silent = generate(small_config(p_reply=0.0, p_repeat=0.0, p_cc=0.0,
                                       p_forward=0.0), seed=5)
        assert (
            self._pair_fractions(replies)[PairType.PING_PONG]
            > self._pair_fractions(silent)[PairType.PING_PONG]
        )

    def test_cc_same_timestamp_lowers_unique_fraction(self):
        with_cc = generate(
            small_config(p_cc=0.6, cc_max=3, cc_same_timestamp=True), seed=6
        )
        without = generate(small_config(p_cc=0.0), seed=6)
        assert (
            with_cc.unique_timestamp_fraction()
            < without.unique_timestamp_fraction()
        )

    def test_no_repeated_edges_mode(self):
        g = generate(small_config(allow_repeated_edges=False, n_events=300), seed=7)
        edges = [ev.edge for ev in g.events]
        assert len(edges) == len(set(edges))

    def test_repeated_edges_default(self):
        g = generate(small_config(p_repeat=0.6), seed=8)
        edges = [ev.edge for ev in g.events]
        assert len(edges) > len(set(edges))

    def test_return_mechanism_creates_triangles(self):
        from repro.algorithms.cycles import enumerate_temporal_cycles
        chained = generate(
            small_config(p_forward=0.5, p_return=0.9, chain_decay=0.9,
                         max_chain_depth=4),
            seed=9,
        )
        cycles = list(
            enumerate_temporal_cycles(chained, delta_w=600, min_length=3,
                                      max_length=3, max_cycles=10)
        )
        assert cycles  # convey triangles exist

    def test_model_reusable_rng(self):
        model = ActivityModel(small_config(), seed=11)
        g = model.run()
        assert len(g) == 800
