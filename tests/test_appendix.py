"""Tests for the appendix experiments (Figures 7–11)."""

from repro.experiments import run_experiment
from repro.experiments.appendix import (
    FIGURE7_DATASETS,
    FIGURE8_DATASETS,
    FIGURE9_PANELS,
    FIGURE10_DATASETS,
    FIGURE11_DATASETS,
)
from repro.datasets.registry import dataset_names

import pytest

pytest.importorskip("numpy", reason="appendix experiments run on numpy-seeded datasets")


class TestDatasetCoverage:
    def test_figures_7_and_8_cover_all_datasets(self):
        assert set(FIGURE7_DATASETS) | set(FIGURE8_DATASETS) == set(dataset_names())
        assert not set(FIGURE7_DATASETS) & set(FIGURE8_DATASETS)

    def test_panel_datasets_are_registered(self):
        names = set(dataset_names())
        assert {name for name, _code in FIGURE9_PANELS} <= names
        assert set(FIGURE10_DATASETS) <= names
        assert set(FIGURE11_DATASETS) <= names

    def test_figure9_panels_use_valid_codes(self):
        from repro.core.notation import is_valid_code

        for _name, code in FIGURE9_PANELS:
            assert is_valid_code(code)


class TestRuns:
    def test_figure7_retitled_and_structured(self):
        result = run_experiment(
            "figure7",
            datasets=["calls-copenhagen"],
            scale=0.2,
            n_events_list=(3,),
        )
        assert result.experiment_id == "figure7"
        assert result.text.startswith("Figure 7 (appendix)")
        assert "calls-copenhagen" in result.data

    def test_figure9_accepts_dataset_override(self):
        result = run_experiment("figure9", datasets=["sms-copenhagen"], scale=0.2)
        assert result.experiment_id == "figure9"
        assert any(key.startswith("sms-copenhagen") for key in result.data)

    def test_figure10_shares_figure5_schema(self):
        result = run_experiment("figure10", datasets=["sms-copenhagen"], scale=0.3)
        per_config = result.data["sms-copenhagen"]
        assert {"only-ΔC", "ΔC/ΔW=0.66", "only-ΔW"} <= set(per_config)
        for entry in per_config.values():
            assert "uniformity" in entry
            assert "histogram" in entry

    def test_figure11_shares_figure6_schema(self):
        result = run_experiment("figure11", datasets=["sms-copenhagen"], scale=0.3)
        entry = result.data["sms-copenhagen"]
        assert len(entry["matrix"]) == 6
        assert "asymmetries" in entry
