"""Tests for dataset statistics (Table 2 building blocks)."""

from repro.core.temporal_graph import TemporalGraph
from repro.datasets.statistics import compute_stats, stats_table


class TestComputeStats:
    def test_basic_counts(self, triangle_graph):
        stats = compute_stats(triangle_graph, name="tri")
        assert stats.name == "tri"
        assert stats.nodes == 3
        assert stats.events == 3
        assert stats.edges == 3
        assert stats.unique_timestamps == 3
        assert stats.unique_ts_fraction == 1.0

    def test_duplicate_timestamps(self):
        g = TemporalGraph.from_tuples([(0, 1, 5), (1, 2, 5), (2, 0, 9)])
        stats = compute_stats(g)
        assert stats.unique_timestamps == 2
        assert stats.unique_ts_fraction == 1 / 3

    def test_median_interevent(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (0, 1, 4), (0, 1, 100)])
        assert compute_stats(g).median_interevent == (4 + 96) / 2

    def test_name_falls_back_to_graph_name(self):
        g = TemporalGraph.from_tuples([(0, 1, 0)], name="named")
        assert compute_stats(g).name == "named"

    def test_as_row_shape(self, triangle_graph):
        row = compute_stats(triangle_graph, name="x").as_row()
        assert len(row) == 7


class TestStatsTable:
    def test_renders_all_rows(self, triangle_graph, star_graph):
        stats = [
            compute_stats(triangle_graph, name="tri"),
            compute_stats(star_graph, name="star"),
        ]
        text = stats_table(stats)
        assert "tri" in text
        assert "star" in text
        assert "m(Δt)" in text

    def test_compact_formats(self):
        g = TemporalGraph.from_tuples(
            [(i % 97, (i + 1) % 97, float(i)) for i in range(1500)]
        )
        text = stats_table([compute_stats(g, name="big")])
        assert "1.50K" in text
