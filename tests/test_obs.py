"""Tests for the observability layer (:mod:`repro.obs`).

Pins the contracts the rest of the stack builds on: the null-recorder
default records nothing anywhere, histogram/snapshot merges are
associative and commutative (so shard-worker snapshots fold in any
grouping), and an instrumented ``jobs>1`` census ships every worker's
registry back and merges it into the parent — per-shard timings
included.
"""

from __future__ import annotations

import json
import math
import random

import pytest

import repro.obs as obs
from repro.core.constraints import TimingConstraints
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.obs import (
    Histogram,
    MetricsRegistry,
    labeled,
    merge_snapshots,
    render_table,
    summarize_histogram,
)
from repro.obs.registry import _ZERO_BUCKET, _bucket, iter_layers

CONSTRAINTS = TimingConstraints(delta_c=40.0, delta_w=80.0)


@pytest.fixture(autouse=True)
def _null_recorder():
    """Every test starts and ends on the null recorder."""
    obs.disable()
    yield
    obs.disable()


def _graph(n: int = 300, nodes: int = 12, seed: int = 7) -> TemporalGraph:
    rng = random.Random(seed)
    events: list[tuple[int, int, float]] = []
    t = 0.0
    while len(events) < n:
        t += rng.random()
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u != v:
            events.append((u, v, t))
    return TemporalGraph.from_tuples(events)


# ----------------------------------------------------------------------
# the registry primitives
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a.calls")
        reg.inc("a.calls", 4)
        reg.set_gauge("a.depth", 3)
        reg.set_gauge("a.depth", 2)  # last write wins
        reg.observe("a.sizes", 10.0)
        reg.observe("a.sizes", 20.0)
        assert reg.counters["a.calls"] == 5
        assert reg.gauges["a.depth"] == 2.0
        hist = reg.histograms["a.sizes"]
        assert hist.count == 2
        assert hist.mean == 15.0
        assert hist.vmin == 10.0
        assert hist.vmax == 20.0
        assert len(reg) == 3

    def test_labeled_renders_sorted_labels_into_name(self):
        assert labeled("a.b") == "a.b"
        assert labeled("a.b", k="x") == "a.b{k=x}"
        assert labeled("a.b", z=1, a="q") == "a.b{a=q,z=1}"

    def test_span_times_into_histogram(self):
        reg = MetricsRegistry()
        with reg.span("x.seconds"):
            pass
        with reg.span("x.seconds"):
            pass
        hist = reg.histograms["x.seconds"]
        assert hist.count == 2
        assert hist.vmin >= 0.0

    def test_snapshot_roundtrip_and_json(self):
        reg = MetricsRegistry()
        reg.inc("a.calls", 3)
        reg.set_gauge("a.depth", 7)
        for v in (0.0, 0.5, 3.0, 1e-9):
            reg.observe("a.sizes", v)
        snap = reg.snapshot()
        # JSON-clean (the --stats-json / BENCH sidecar contract).
        parsed = json.loads(json.dumps(snap))
        hist = Histogram.from_snapshot(parsed["histograms"]["a.sizes"])
        assert hist.count == 4
        assert hist.vmin == 0.0
        assert hist.vmax == 3.0
        assert hist.buckets == reg.histograms["a.sizes"].buckets
        assert json.loads(reg.to_json())["counters"]["a.calls"] == 3

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("b", 1)
        reg.clear()
        assert len(reg) == 0

    def test_iter_layers_groups_by_prefix(self):
        reg = MetricsRegistry()
        reg.inc("storage.x")
        reg.set_gauge("online.y", 1)
        reg.observe("engine.z", 1)
        assert list(iter_layers(reg.snapshot())) == ["engine", "online", "storage"]

    def test_render_table_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.inc("storage.calls", 2)
        reg.observe("online.push.seconds", 0.001)
        text = render_table(reg.snapshot())
        assert "[storage]" in text and "[online]" in text
        assert "storage.calls" in text
        assert "online.push.seconds" in text
        assert render_table(MetricsRegistry().snapshot()).endswith(
            "(no metrics recorded)"
        )


# ----------------------------------------------------------------------
# histogram bucket encoding and merge algebra
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_edges_are_powers_of_two(self):
        # bucket e covers [2**(e-1), 2**e)
        assert _bucket(1.0) == 1
        assert _bucket(1.999) == 1
        assert _bucket(2.0) == 2
        assert _bucket(0.5) == 0
        assert _bucket(0.0) == _ZERO_BUCKET
        assert _bucket(-3.0) == _ZERO_BUCKET

    def test_quantiles_clamp_to_exact_extremes(self):
        hist = Histogram()
        for v in (0.1, 0.2, 0.4, 0.8, 100.0):
            hist.observe(v)
        assert hist.quantile(0.0) == 0.1
        assert hist.quantile(1.0) == 100.0
        # interior quantiles land on a bucket edge within the range
        assert 0.1 <= hist.quantile(0.5) <= 100.0

    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))
        assert summarize_histogram(Histogram().to_snapshot()) == {"count": 0}

    @staticmethod
    def _random_histogram(seed: int, n: int = 200) -> Histogram:
        rng = random.Random(seed)
        hist = Histogram()
        for _ in range(n):
            hist.observe(rng.random() * 10 ** rng.randrange(-6, 4))
        return hist

    def test_merge_is_associative_and_commutative(self):
        a, b, c = (self._random_histogram(s) for s in (1, 2, 3))

        def merged(parts):
            out = Histogram()
            for part in parts:
                out.merge(part)
            return out.to_snapshot()

        left = Histogram()
        left.merge(a)
        left.merge(b)
        ab_c = Histogram()
        ab_c.merge(left)
        ab_c.merge(c)
        bc = Histogram()
        bc.merge(b)
        bc.merge(c)
        a_bc = Histogram()
        a_bc.merge(a)
        a_bc.merge(bc)
        assert ab_c.to_snapshot() == a_bc.to_snapshot()  # associative
        assert merged([a, b, c]) == merged([c, b, a])  # commutative
        assert merged([a, b, c]) == merged([b, a, c])

    def test_merge_snapshots_matches_inline_recording(self):
        """Recording everything in one registry == merging per-part snapshots."""
        rng = random.Random(11)
        values = [rng.random() * 100 for _ in range(300)]
        whole = MetricsRegistry()
        parts = [MetricsRegistry() for _ in range(4)]
        for i, v in enumerate(values):
            whole.observe("x.sizes", v)
            whole.inc("x.calls")
            parts[i % 4].observe("x.sizes", v)
            parts[i % 4].inc("x.calls")
        merged = merge_snapshots(p.snapshot() for p in parts)
        assert merged["counters"] == whole.snapshot()["counters"]
        got = merged["histograms"]["x.sizes"]
        want = whole.snapshot()["histograms"]["x.sizes"]
        assert got["buckets"] == want["buckets"]
        assert got["count"] == want["count"]
        assert got["min"] == want["min"]
        assert got["max"] == want["max"]
        # summation order differs between the two paths, so the exact
        # totals may differ in the last ulps
        assert got["total"] == pytest.approx(want["total"])

    def test_merge_gauges_keep_peak(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.set_gauge("q.depth", 5)
        b.set_gauge("q.depth", 9)
        assert merge_snapshots([a.snapshot(), b.snapshot()])["gauges"] == {
            "q.depth": 9.0
        }
        assert merge_snapshots([b.snapshot(), a.snapshot()])["gauges"] == {
            "q.depth": 9.0
        }


# ----------------------------------------------------------------------
# the null-recorder default
# ----------------------------------------------------------------------
class TestNullRecorder:
    def test_disabled_by_default_and_span_is_shared_noop(self):
        assert obs.ACTIVE is None
        assert not obs.enabled()
        assert obs.span("a") is obs.span("b")  # one shared object
        with obs.span("a"):
            pass  # no-op, no error

    def test_enable_is_idempotent_disable_resets(self):
        r1 = obs.enable()
        r2 = obs.enable()
        assert r1 is r2
        custom = MetricsRegistry()
        assert obs.enable(custom) is custom
        assert obs.active() is custom
        obs.disable()
        assert obs.active() is None

    def test_disabled_instrumentation_records_nothing(self):
        """Instrumented hot paths leave a detached registry untouched."""
        from repro.algorithms.counting import run_census
        from repro.online import OnlineCensus

        reg = obs.enable()
        obs.disable()
        graph = _graph()
        run_census(graph, 3, CONSTRAINTS, max_nodes=3)
        engine = OnlineCensus(3, CONSTRAINTS, 60.0, max_nodes=3, prune_every=64)
        for event in graph.events:
            engine.push(event)
        engine.prune()
        assert len(reg) == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# instrumented layers, end to end
# ----------------------------------------------------------------------
class TestInstrumentedLayers:
    def test_serial_census_records_storage_and_engine(self):
        from repro.algorithms.counting import run_census
        from repro.engine import clear_plan_cache, compile_plan

        graph = _graph()
        reg = obs.enable()
        clear_plan_cache()
        compile_plan(3, CONSTRAINTS, None, graph.storage, max_nodes=3)
        compile_plan(3, CONSTRAINTS, None, graph.storage, max_nodes=3)
        assert reg.counters["engine.plan.cache_miss"] == 1
        assert reg.counters["engine.plan.cache_hit"] == 1

        census = run_census(graph, 3, CONSTRAINTS, max_nodes=3)
        assert census.total > 0
        snap = reg.snapshot()
        assert "engine" in set(iter_layers(snap))
        run_keys = [
            k for k in snap["counters"] if k.startswith("engine.run_plan.calls")
        ]
        assert run_keys
        kernel = run_keys[0].split("kernel=")[1].rstrip("}")
        frontier_key = labeled("engine.frontier.partials", kernel=kernel)
        assert snap["histograms"][frontier_key]["count"] > 0
        if kernel == "generic":
            # the generic kernel's candidate seam lives in storage; the
            # vectorized kernel batches through extension_arrays instead
            assert snap["counters"]["storage.adjacent_events_between.calls"] > 0

    def test_online_engine_gauges_and_counters(self):
        from repro.online import OnlineCensus

        graph = _graph(n=400)
        reg = obs.enable()
        engine = OnlineCensus(3, CONSTRAINTS, 60.0, max_nodes=3, prune_every=128)
        for event in graph.events:
            engine.push(event)
        snap = reg.snapshot()
        push = snap["histograms"]["online.push.seconds"]
        assert push["count"] == len(graph) == engine.pushed
        assert snap["counters"]["online.expire.retired"] == engine.expired
        assert snap["counters"]["online.push.instances"] == engine.discovered
        assert snap["counters"]["online.prune.dropped"] > 0
        assert snap["histograms"]["online.prune.seconds"]["count"] >= 1
        # The incremental entries gauge matches a from-scratch recount.
        store = engine._prefixes
        recount = sum(len(prefixes) for _t, prefixes in store._buckets.values())
        assert store.entries == recount
        assert snap["gauges"]["online.prefix_store.entries"] == store.entries
        assert snap["gauges"]["online.expiry_heap.depth"] == len(engine._heap)
        summary = summarize_histogram(push)
        assert summary["count"] == engine.pushed
        assert summary["p50"] <= summary["p99"] <= summary["max"]

    def test_online_counts_identical_with_and_without_obs(self):
        from repro.online import OnlineCensus

        graph = _graph(n=350, seed=13)

        def replay():
            engine = OnlineCensus(3, CONSTRAINTS, 60.0, max_nodes=3, prune_every=64)
            for event in graph.events:
                engine.push(event)
            return engine.census()

        plain = replay()
        obs.enable()
        instrumented = replay()
        assert instrumented.code_counts == plain.code_counts
        assert instrumented.total == plain.total

    def test_stream_matcher_shed_counter(self):
        from repro.algorithms.pattern import chain_pattern
        from repro.algorithms.streaming import StreamMatcher

        pattern = chain_pattern(2)
        reg = obs.enable()
        matcher = StreamMatcher(pattern, delta_w=1000.0, max_partials=2)
        for i in range(30):
            matcher.push(Event(i % 5, (i + 1) % 5, float(i)))
        assert matcher.shed > 0
        assert reg.counters["streaming.matcher.shed"] == matcher.shed


# ----------------------------------------------------------------------
# parallel: worker snapshots merge into the parent registry
# ----------------------------------------------------------------------
class TestParallelMerge:
    def test_jobs_run_merges_worker_snapshots(self):
        from repro.algorithms.counting import run_census

        graph = _graph(n=500, seed=21)
        serial = run_census(graph, 3, CONSTRAINTS, max_nodes=3)

        reg = obs.enable()
        parallel = run_census(graph, 3, CONSTRAINTS, max_nodes=3, jobs=4)
        assert parallel.code_counts == serial.code_counts  # instrumentation inert

        snap = reg.snapshot()
        n_shards = int(snap["gauges"]["parallel.shards"])
        assert n_shards >= 1
        # One wall-time observation per shard — the per-shard timings of
        # the merged snapshot.
        for metric in (
            "parallel.shard.seconds",
            "parallel.shard.queue_wait_seconds",
            "parallel.shard.events",
            "parallel.shard.payload_bytes",
        ):
            assert snap["histograms"][metric]["count"] == n_shards, metric
        assert snap["gauges"]["parallel.jobs"] == 4.0
        assert snap["counters"][labeled("parallel.execute.calls", kind="census")] == 1
        # Worker-side metrics (recorded inside shard processes) made it
        # back into the parent registry through the snapshot merge: the
        # drivers' run_plan counters only ever increment inside workers
        # on this code path.
        worker_keys = [
            k for k in snap["counters"] if k.startswith("engine.run_plan.calls")
        ]
        assert worker_keys
        assert sum(snap["counters"][k] for k in worker_keys) >= n_shards

    def test_worker_snapshot_merge_is_order_independent(self):
        """Shard snapshots fold to identical totals in any order/grouping."""
        rng = random.Random(5)
        snaps = []
        for w in range(4):
            worker = MetricsRegistry()
            worker.inc("storage.calls", rng.randrange(1, 50))
            # dyadic values sum exactly in any order, so the equality
            # below is exact rather than last-ulp-approximate
            worker.observe("parallel.shard.seconds", rng.randrange(1, 800) / 8)
            worker.set_gauge("online.depth", rng.randrange(100))
            snaps.append(worker.snapshot())
        direct = merge_snapshots(snaps)
        reversed_ = merge_snapshots(reversed(snaps))
        assert direct == reversed_
        # grouped: ((s0+s1) + (s2+s3)) == flat fold
        grouped = merge_snapshots(
            [merge_snapshots(snaps[:2]), merge_snapshots(snaps[2:])]
        )
        assert grouped == direct


# ----------------------------------------------------------------------
# the REPRO_OBS environment opt-in
# ----------------------------------------------------------------------
class TestEnvOptIn:
    """``REPRO_OBS`` falsy spellings must not enable the recorder.

    Any-non-empty-is-truthy parsing once meant ``REPRO_OBS=false``
    silently *enabled* observability; :func:`repro.obs.env_enabled` pins
    the fixed semantics.
    """

    @pytest.mark.parametrize("value", [None, "", "0", "false", "no", "off"])
    def test_falsy_values_stay_disabled(self, value):
        assert obs.env_enabled(value) is False

    @pytest.mark.parametrize(
        "value", ["FALSE", "No", "OFF", " false ", "\t0\n", "  "]
    )
    def test_falsy_values_case_and_space_insensitive(self, value):
        assert obs.env_enabled(value) is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_truthy_values_enable(self, value):
        assert obs.env_enabled(value) is True

    @pytest.mark.parametrize(
        "value, expect", [("false", "False"), ("0", "False"), ("1", "True")]
    )
    def test_import_time_gate(self, value, expect):
        """The import-time opt-in honors the parse (fresh interpreter)."""
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_OBS=value)
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, "-c", "import repro.obs as o; print(o.enabled())"],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == expect
