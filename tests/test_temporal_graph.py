"""Unit tests for repro.core.temporal_graph."""

import pytest

from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


@pytest.fixture
def graph() -> TemporalGraph:
    return TemporalGraph.from_tuples(
        [(0, 1, 10), (1, 2, 20), (0, 1, 30), (2, 0, 40), (1, 2, 40)]
    )


class TestConstruction:
    def test_events_sorted(self):
        g = TemporalGraph.from_tuples([(0, 1, 50), (1, 2, 10)])
        assert [ev.t for ev in g.events] == [10, 50]

    def test_len(self, graph):
        assert len(graph) == 5

    def test_nodes(self, graph):
        assert graph.nodes == {0, 1, 2}

    def test_num_edges_counts_directed_pairs(self, graph):
        # (0,1) twice counts once; (1,2) twice counts once; (2,0) once.
        assert graph.num_edges == 3

    def test_timespan(self, graph):
        assert graph.timespan == 30

    def test_empty_graph(self):
        g = TemporalGraph([])
        assert len(g) == 0
        assert g.timespan == 0.0
        assert g.nodes == set()

    def test_iteration_yields_events(self, graph):
        assert all(isinstance(ev, Event) for ev in graph)

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            TemporalGraph.from_tuples([(1, 1, 0)])


class TestIndices:
    def test_node_events_cover_both_endpoints(self, graph):
        # ties at t=40 sort (1,2,40) before (2,0,40)
        assert graph.node_events[0] == [0, 2, 4]
        assert graph.node_events[2] == [1, 3, 4]

    def test_node_times_parallel(self, graph):
        for node in graph.nodes:
            idxs = graph.node_events[node]
            assert graph.node_times[node] == [graph.times[i] for i in idxs]

    def test_edge_events(self, graph):
        assert graph.edge_events[(0, 1)] == [0, 2]
        assert graph.edge_events[(2, 0)] == [4]

    def test_edge_times_sorted(self, graph):
        for times in graph.edge_times.values():
            assert times == sorted(times)


class TestWindowQueries:
    def test_node_events_in_closed_window(self, graph):
        assert graph.node_events_in(0, 10, 30) == [0, 2]
        assert graph.node_events_in(0, 10, 40) == [0, 2, 4]

    def test_node_events_in_unknown_node(self, graph):
        assert graph.node_events_in(99, 0, 100) == []

    def test_count_node_events_in(self, graph):
        assert graph.count_node_events_in(1, 10, 40) == 4
        assert graph.count_node_events_in(1, 11, 19) == 0

    def test_edge_events_in(self, graph):
        assert graph.edge_events_in((1, 2), 20, 40) == [1, 3]
        assert graph.edge_events_in((1, 2), 21, 39) == []

    def test_count_edge_events_in_unknown_edge(self, graph):
        assert graph.count_edge_events_in((9, 9), 0, 100) == 0

    def test_events_in(self, graph):
        assert graph.events_in(20, 40) == [1, 2, 3, 4]
        assert graph.events_in(41, 99) == []


class TestStaticProjection:
    def test_static_edges(self, graph):
        assert graph.static_edges() == {(0, 1), (1, 2), (2, 0)}

    def test_static_neighbors(self, graph):
        assert graph.static_neighbors(0) == {1, 2}
        assert graph.static_neighbors(1) == {0, 2}

    def test_induced_static_edges_subset(self, graph):
        assert graph.induced_static_edges([0, 1]) == {(0, 1)}
        assert graph.induced_static_edges([0, 1, 2]) == graph.static_edges()

    def test_induced_static_edges_empty(self, graph):
        assert graph.induced_static_edges([7, 8]) == set()


class TestTransformations:
    def test_slice_keeps_closed_window(self, graph):
        sliced = graph.slice(20, 40)
        assert len(sliced) == 4
        assert sliced.times[0] == 20

    def test_head(self, graph):
        assert len(graph.head(2)) == 2

    def test_degrade_resolution_floors_times(self, graph):
        degraded = graph.degrade_resolution(25)
        assert set(degraded.times) == {0, 25}

    def test_degrade_resolution_preserves_counts(self, graph):
        assert len(graph.degrade_resolution(300)) == len(graph)

    def test_degrade_resolution_rejects_nonpositive(self, graph):
        with pytest.raises(ValueError):
            graph.degrade_resolution(0)

    def test_filter_events(self, graph):
        only_01 = graph.filter_events(lambda ev: ev.edge == (0, 1))
        assert len(only_01) == 2

    def test_relabeled_first_appearance_order(self):
        g = TemporalGraph.from_tuples([(7, 3, 1), (3, 9, 2)])
        r = g.relabeled()
        assert [ev.edge for ev in r.events] == [(0, 1), (1, 2)]

    def test_relabeled_preserves_times(self, graph):
        assert graph.relabeled().times == graph.times


class TestStatistics:
    def test_unique_timestamps(self, graph):
        assert graph.unique_timestamps() == 4  # 10, 20, 30, 40 (40 twice)

    def test_unique_timestamp_fraction(self, graph):
        # 3 of 5 events have a timestamp shared with no other event.
        assert graph.unique_timestamp_fraction() == pytest.approx(3 / 5)

    def test_unique_timestamp_fraction_empty(self):
        assert TemporalGraph([]).unique_timestamp_fraction() == 0.0

    def test_median_interevent_time(self, graph):
        # gaps: 10, 10, 10, 0 -> sorted 0,10,10,10 -> median 10
        assert graph.median_interevent_time() == 10

    def test_median_interevent_single_event(self):
        assert TemporalGraph.from_tuples([(0, 1, 5)]).median_interevent_time() == 0.0
