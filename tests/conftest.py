"""Shared fixtures for the test suite.

Fixtures deliberately use tiny graphs with hand-checkable motif content;
dataset-backed tests use small scales so the whole suite stays fast.

The session-scoped, parametrized :func:`storage_backend` fixture runs the
entire suite once per registered storage backend (``REPRO_STORAGE=list``,
``REPRO_STORAGE=columnar``, and — when NumPy is importable —
``REPRO_STORAGE=numpy``), so every seed test doubles as a parity check of
the accelerated engines.  When ``REPRO_STORAGE`` is already set in the
environment the suite runs once, pinned to that backend — this is how the
CI matrix runs one backend per job instead of every backend in every job.
"""

from __future__ import annotations

import os

import pytest

try:
    from hypothesis import settings as _hypothesis_settings

    # Reproducible property testing: the "ci" profile pins a derandomized
    # seed so every CI run replays the identical example sequence, and the
    # "thorough" profile raises the example budget for the scheduled
    # (cron) leg.  Select with HYPOTHESIS_PROFILE=ci|thorough; unset runs
    # the library defaults (randomized, 100 examples) for local fuzzing.
    _hypothesis_settings.register_profile(
        "ci", derandomize=True, deadline=None, max_examples=100
    )
    _hypothesis_settings.register_profile(
        "thorough", derandomize=True, deadline=None, max_examples=500
    )
    _hypothesis_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "default")
    )
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pass

from repro.core.constraints import TimingConstraints
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.registry import get_dataset
from repro.storage import ENV_VAR, available_backends


def _session_backends() -> list[str]:
    forced = os.environ.get(ENV_VAR)
    if forced:
        return [forced]
    return [b for b in ("list", "columnar", "numpy") if b in available_backends()]


@pytest.fixture(scope="session", autouse=True, params=_session_backends())
def storage_backend(request: pytest.FixtureRequest):
    """Default storage backend for every graph built during the session."""
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = request.param
    yield request.param
    if previous is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = previous


@pytest.fixture
def triangle_graph() -> TemporalGraph:
    """One temporal triangle 0→1, 1→2, 0→2 at t = 10, 20, 25."""
    return TemporalGraph.from_tuples([(0, 1, 10), (1, 2, 20), (0, 2, 25)])


@pytest.fixture
def star_graph() -> TemporalGraph:
    """A hub (node 0) contacting four leaves in quick succession."""
    return TemporalGraph.from_tuples(
        [(0, 1, 10), (0, 2, 12), (0, 3, 14), (0, 4, 16)]
    )


@pytest.fixture
def conversation_graph() -> TemporalGraph:
    """A two-person volley with an interruption from a third node.

    Events: 0→1 (t=10), 1→0 (t=20), 0→2 (t=25), 0→1 (t=30), 1→0 (t=40).
    """
    return TemporalGraph.from_tuples(
        [(0, 1, 10), (1, 0, 20), (0, 2, 25), (0, 1, 30), (1, 0, 40)]
    )


@pytest.fixture
def repeated_edge_graph() -> TemporalGraph:
    """Repeated edge with a cross edge — exercises the CDG restriction.

    Events: 0→1 (t=0), 2→3 (t=5), 0→1 (t=10), 2→3 (t=15), 1→2 (t=20).
    """
    return TemporalGraph.from_tuples(
        [(0, 1, 0), (2, 3, 5), (0, 1, 10), (2, 3, 15), (1, 2, 20)]
    )


@pytest.fixture
def loose() -> TimingConstraints:
    """Constraints wide enough to admit everything in the tiny fixtures."""
    return TimingConstraints(delta_c=1000.0, delta_w=1000.0)


@pytest.fixture(scope="session")
def small_sms(storage_backend: str) -> TemporalGraph:
    """A small message-network dataset (shared across the session)."""
    pytest.importorskip("numpy", reason="dataset synthesis is numpy-seeded")
    return get_dataset("sms-copenhagen", scale=0.15)


@pytest.fixture(scope="session")
def small_email(storage_backend: str) -> TemporalGraph:
    """A small email dataset with same-timestamp carbon copies."""
    pytest.importorskip("numpy", reason="dataset synthesis is numpy-seeded")
    return get_dataset("email", scale=0.1)


@pytest.fixture(scope="session")
def small_bitcoin(storage_backend: str) -> TemporalGraph:
    """A small no-repeated-edges ratings dataset."""
    pytest.importorskip("numpy", reason="dataset synthesis is numpy-seeded")
    return get_dataset("bitcoin-otc", scale=0.2)


def make_events(*triples: tuple[int, int, float]) -> list[Event]:
    """Terse Event list construction for inline test data."""
    return [Event(*t) for t in triples]
