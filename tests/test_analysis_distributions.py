"""Tests for intermediate-position, timespan, and pair-sequence analysis."""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.intermediate import (
    absolute_skew,
    edge_mass,
    position_histogram,
    skewness,
)
from repro.analysis.pairseq import (
    asymmetry,
    col_totals,
    dominant_sequences,
    log_scaled,
    pair_sequence_matrix,
    row_totals,
    sequence_label,
)
from repro.analysis.timespan import (
    TimespanSummary,
    timespan_histogram,
    timespan_summary,
    uniformity,
)
from repro.core.eventpairs import PairType


class TestPositionHistogram:
    def test_bins_cover_unit_interval(self):
        samples = [(1, 0.05), (1, 0.5), (1, 0.95), (1, 1.0)]
        hist = position_histogram(samples, n_bins=10)
        assert hist[0] == 1
        assert hist[5] == 1
        assert hist[9] == 2  # 0.95 and the boundary 1.0

    def test_position_filter(self):
        samples = [(1, 0.1), (2, 0.9)]
        assert position_histogram(samples, n_bins=2, event_position=1).tolist() == [1, 0]
        assert position_histogram(samples, n_bins=2, event_position=2).tolist() == [0, 1]

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            position_histogram([], n_bins=0)


class TestSkew:
    def test_centered_samples_zero_skew(self):
        samples = [(1, 0.4), (1, 0.6)]
        assert skewness(samples) == pytest.approx(0.0)

    def test_early_skew_negative(self):
        assert skewness([(1, 0.1), (1, 0.2)]) < 0

    def test_late_skew_positive(self):
        assert skewness([(1, 0.8), (1, 0.9)]) > 0

    def test_empty_is_zero(self):
        assert skewness([]) == 0.0
        assert absolute_skew([]) == 0.0

    def test_edge_mass(self):
        samples = [(1, 0.01), (1, 0.99), (1, 0.5), (1, 0.5)]
        assert edge_mass(samples, n_bins=10) == pytest.approx(0.5)
        assert edge_mass([], n_bins=10) == 0.0


class TestTimespanHistogram:
    def test_counts_and_edges(self):
        edges, counts = timespan_histogram([1, 2, 3, 9], n_bins=2, upper=10)
        assert len(edges) == 3
        assert counts.tolist() == [3, 1]

    def test_empty(self):
        edges, counts = timespan_histogram([], n_bins=4, upper=8)
        assert counts.sum() == 0
        assert len(edges) == 5

    def test_clipping_beyond_upper(self):
        _, counts = timespan_histogram([100], n_bins=2, upper=10)
        assert counts.tolist() == [0, 1]


class TestTimespanSummary:
    def test_summary_values(self):
        s = timespan_summary([0.0, 10.0])
        assert isinstance(s, TimespanSummary)
        assert s.count == 2
        assert s.mean == 5.0
        assert s.median == 5.0
        assert s.maximum == 10.0

    def test_empty_summary(self):
        s = timespan_summary([])
        assert s.count == 0
        assert s.cv == 0.0

    def test_uniformity_of_uniform_sample(self):
        spans = np.linspace(0, 100, 1000)[:-1]
        assert uniformity(spans, upper=100) > 0.95

    def test_uniformity_of_point_mass(self):
        assert uniformity([50.0] * 100, upper=100, n_bins=10) == pytest.approx(
            1 - 0.9, abs=1e-9
        )

    def test_uniformity_empty(self):
        assert uniformity([], upper=100) == 0.0


class TestPairSequenceMatrix:
    def test_matrix_placement(self):
        counts = {
            (PairType.REPETITION, PairType.OUT_BURST): 7,
            (PairType.CONVEY, PairType.CONVEY): 3,
        }
        m = pair_sequence_matrix(counts)
        assert m[0, 3] == 7  # R row, O column
        assert m[4, 4] == 3  # C, C
        assert m.sum() == 10

    def test_ignores_non_length2_and_disjoint(self):
        counts = {
            (PairType.REPETITION,): 5,
            (PairType.REPETITION, None): 2,
            (PairType.REPETITION, PairType.REPETITION, PairType.CONVEY): 4,
        }
        assert pair_sequence_matrix(counts).sum() == 0

    def test_log_scaling_bounds(self):
        m = pair_sequence_matrix({(PairType.REPETITION, PairType.REPETITION): 100,
                                  (PairType.CONVEY, PairType.CONVEY): 1})
        scaled = log_scaled(m)
        assert scaled.max() == 1.0
        assert scaled.min() == 0.0

    def test_log_scaling_all_zero(self):
        scaled = log_scaled(np.zeros((6, 6)))
        assert scaled.sum() == 0

    def test_log_scaling_single_value(self):
        m = np.zeros((6, 6))
        m[0, 0] = 5
        assert log_scaled(m)[0, 0] == 1.0


class TestAsymmetry:
    def test_directional_preference(self):
        counts = {
            (PairType.CONVEY, PairType.OUT_BURST): 9,
            (PairType.OUT_BURST, PairType.CONVEY): 1,
        }
        m = pair_sequence_matrix(counts)
        assert asymmetry(m, PairType.CONVEY, PairType.OUT_BURST) == pytest.approx(0.8)
        assert asymmetry(m, PairType.OUT_BURST, PairType.CONVEY) == pytest.approx(-0.8)

    def test_zero_when_absent(self):
        m = np.zeros((6, 6))
        assert asymmetry(m, PairType.CONVEY, PairType.IN_BURST) == 0.0

    def test_totals(self):
        counts = {(PairType.REPETITION, PairType.CONVEY): 4}
        m = pair_sequence_matrix(counts)
        assert row_totals(m)[PairType.REPETITION] == 4
        assert col_totals(m)[PairType.CONVEY] == 4
        assert sum(row_totals(m).values()) == sum(col_totals(m).values())


class TestSequenceHelpers:
    def test_dominant_sequences(self):
        counts = {
            (PairType.REPETITION, PairType.REPETITION): 10,
            (PairType.CONVEY, PairType.CONVEY): 5,
            (PairType.REPETITION, None): 99,
        }
        top = dominant_sequences(counts, k=2)
        assert top[0][1] == 10
        assert all(None not in seq for seq, _count in top)

    def test_sequence_label(self):
        assert sequence_label((PairType.REPETITION, PairType.CONVEY)) == "R→C"
        assert sequence_label((PairType.REPETITION, None)) == "R→·"
