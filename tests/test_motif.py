"""Tests for the pattern-level Motif class and node orbits."""

import pytest

from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import PairType
from repro.core.motif import (
    Motif,
    all_orbit_features,
    instance_orbits,
    node_motif_profiles,
    profile_vector,
)
from repro.core.temporal_graph import TemporalGraph


class TestMotifBasics:
    def test_valid_construction(self):
        m = Motif("010210")
        assert m.n_events == 3
        assert m.n_nodes == 3
        assert m.events == [(0, 1), (0, 2), (1, 0)]
        assert m.edges == {(0, 1), (0, 2), (1, 0)}

    def test_rejects_invalid_codes(self):
        for bad in ("0212", "abc", "0123", ""):
            with pytest.raises(ValueError):
                Motif(bad)

    def test_equality_and_hash(self):
        assert Motif("0101") == Motif("0101")
        assert Motif("0101") != Motif("0110")
        assert len({Motif("0101"), Motif("0101"), Motif("0110")}) == 2

    def test_pair_sequence(self):
        # 0→1, 0→2, 1→0: out-burst, then the reply's target is the second
        # event's source — weakly-connected.
        assert Motif("010210").pair_sequence == (
            PairType.OUT_BURST,
            PairType.WEAKLY_CONNECTED,
        )
        assert Motif("010102").pair_sequence == (
            PairType.REPETITION,
            PairType.OUT_BURST,
        )

    def test_conversation_detection(self):
        assert Motif("010110").is_two_node_conversation()
        assert not Motif("010210").is_two_node_conversation()

    def test_transfer_chain_detection(self):
        assert Motif("011220").is_transfer_chain()
        assert not Motif("010102").is_transfer_chain()

    def test_reciprocated_ask_reply(self):
        """All four Table-3 amplified motifs end by reversing the first
        event."""
        for code in ("010210", "011210", "012010", "012110"):
            assert Motif(code).reciprocated(), code
        assert not Motif("010102").reciprocated()


class TestMatchingAndCounting:
    def test_matches(self, triangle_graph):
        assert Motif("011202").matches(triangle_graph, (0, 1, 2))
        assert not Motif("010102").matches(triangle_graph, (0, 1, 2))

    def test_instances_and_count(self, triangle_graph, loose):
        assert list(Motif("011202").instances(triangle_graph, loose)) == [(0, 1, 2)]
        assert Motif("011202").count(triangle_graph, loose) == 1
        assert Motif("011220").count(triangle_graph, loose) == 0

    def test_count_agrees_with_census(self, small_sms):
        from repro.algorithms.counting import count_motifs

        constraints = TimingConstraints(delta_c=300, delta_w=600)
        counts = count_motifs(small_sms, 3, constraints, max_nodes=3)
        for code in ("010101", "010110"):
            assert Motif(code).count(small_sms, constraints) == counts.get(code, 0)


class TestOrbits:
    def test_instance_orbits_by_appearance(self, triangle_graph):
        orbits = instance_orbits(triangle_graph, (0, 1, 2))
        assert orbits == {0: 0, 1: 1, 2: 2}

    def test_orbits_match_code_digits(self):
        g = TemporalGraph.from_tuples([(7, 3, 1), (9, 3, 2)])  # in-burst
        orbits = instance_orbits(g, (0, 1))
        assert orbits == {7: 0, 3: 1, 9: 2}

    def test_node_profiles_total_mass(self, triangle_graph, loose):
        profiles = node_motif_profiles(triangle_graph, 3, loose)
        # one instance, three nodes, one (code, orbit) entry each
        assert set(profiles) == {0, 1, 2}
        assert profiles[0][("011202", 0)] == 1
        assert profiles[2][("011202", 2)] == 1

    def test_profiles_consistent_with_counts(self, small_sms):
        """Summing orbit-0 participation over nodes equals total instances."""
        from repro.algorithms.counting import total_instances

        constraints = TimingConstraints(delta_c=300, delta_w=600)
        profiles = node_motif_profiles(small_sms, 3, constraints, max_nodes=3)
        orbit0 = sum(
            n
            for profile in profiles.values()
            for (code, orbit), n in profile.items()
            if orbit == 0
        )
        assert orbit0 == total_instances(
            small_sms, 3, constraints, max_nodes=3
        )

    def test_profile_vector_projection(self):
        profile = {("0101", 0): 3, ("0101", 1): 1}
        index = [("0101", 0), ("0101", 1), ("0110", 0)]
        assert profile_vector(profile, index) == [3, 1, 0]

    def test_all_orbit_features_size(self):
        features = all_orbit_features(2, 3)
        # six 2-event codes; 2 orbits for the 2-node ones (0101, 0110),
        # 3 orbits for the four 3-node ones.
        assert len(features) == 2 * 2 + 4 * 3
