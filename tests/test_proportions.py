"""Tests for proportion analysis (Tables 4/7, Figure 3)."""

import pytest

from repro.analysis.proportions import (
    proportion_changes,
    proportion_variance,
    proportions,
    share_change_sign,
)


class TestProportions:
    def test_normalizes(self):
        props = proportions({"a": 3, "b": 1})
        assert props == {"a": 0.75, "b": 0.25}

    def test_universe_fills_zeros(self):
        props = proportions({"a": 4}, universe=["a", "b"])
        assert props == {"a": 1.0, "b": 0.0}

    def test_all_zero_yields_zeros_not_nan(self):
        props = proportions({}, universe=["a", "b"])
        assert props == {"a": 0.0, "b": 0.0}


class TestChanges:
    def test_percentage_points(self):
        before = {"a": 50, "b": 50}
        after = {"a": 75, "b": 25}
        changes = proportion_changes(before, after)
        assert changes["a"] == pytest.approx(25.0)
        assert changes["b"] == pytest.approx(-25.0)

    def test_fraction_mode(self):
        before = {"a": 1, "b": 1}
        after = {"a": 1}
        changes = proportion_changes(before, after, percentage=False)
        assert changes["a"] == pytest.approx(0.5)

    def test_changes_sum_to_zero(self):
        before = {"a": 10, "b": 30, "c": 60}
        after = {"a": 30, "b": 30, "c": 40}
        changes = proportion_changes(before, after)
        assert sum(changes.values()) == pytest.approx(0.0)

    def test_identical_counts_no_change(self):
        counts = {"a": 5, "b": 3}
        changes = proportion_changes(counts, counts)
        assert all(v == pytest.approx(0.0) for v in changes.values())

    def test_empty_after_is_all_negative_or_zero(self):
        changes = proportion_changes({"a": 5, "b": 5}, {}, universe=["a", "b"])
        assert all(v <= 0 for v in changes.values())


class TestVariance:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy", reason="variance summaries use numpy")

    def test_zero_for_no_changes(self):
        assert proportion_variance({"a": 0.0, "b": 0.0}) == 0.0

    def test_zero_for_empty(self):
        assert proportion_variance({}) == 0.0

    def test_larger_dispersion_larger_variance(self):
        small = proportion_variance({"a": 1.0, "b": -1.0})
        large = proportion_variance({"a": 10.0, "b": -10.0})
        assert large > small


class TestSigns:
    def test_sign_values(self):
        before = {"a": 50, "b": 50}
        after = {"a": 75, "b": 25}
        assert share_change_sign(before, after, "a") == 1
        assert share_change_sign(before, after, "b") == -1
        assert share_change_sign(before, before, "a") == 0
