"""Unit tests for repro.core.events."""

import pytest

from repro.core.events import (
    DurativeEvent,
    Event,
    interevent_times,
    strip_durations,
    validate_events,
)


class TestEvent:
    def test_fields(self):
        ev = Event(1, 2, 5.0)
        assert ev.u == 1
        assert ev.v == 2
        assert ev.t == 5.0

    def test_edge_projection(self):
        assert Event(3, 7, 1.0).edge == (3, 7)

    def test_nodes(self):
        assert Event(3, 7, 1.0).nodes == (3, 7)

    def test_reversed_swaps_endpoints(self):
        assert Event(1, 2, 9.0).reversed() == Event(2, 1, 9.0)

    def test_reversed_is_involution(self):
        ev = Event(4, 5, 2.0)
        assert ev.reversed().reversed() == ev

    def test_shifted(self):
        assert Event(1, 2, 10.0).shifted(5.0) == Event(1, 2, 15.0)

    def test_shifted_negative(self):
        assert Event(1, 2, 10.0).shifted(-3.0).t == 7.0

    def test_is_loop(self):
        assert Event(1, 1, 0.0).is_loop()
        assert not Event(1, 2, 0.0).is_loop()

    def test_unpacks_as_tuple(self):
        u, v, t = Event(1, 2, 3.0)
        assert (u, v, t) == (1, 2, 3.0)


class TestDurativeEvent:
    def test_end_time(self):
        assert DurativeEvent(1, 2, 10.0, 5.0).end == 15.0

    def test_without_duration(self):
        assert DurativeEvent(1, 2, 10.0, 5.0).without_duration() == Event(1, 2, 10.0)

    def test_edge(self):
        assert DurativeEvent(1, 2, 0.0, 1.0).edge == (1, 2)

    def test_strip_durations(self):
        durative = [DurativeEvent(0, 1, 0.0, 2.0), DurativeEvent(1, 2, 5.0, 1.0)]
        assert strip_durations(durative) == [Event(0, 1, 0.0), Event(1, 2, 5.0)]


class TestValidateEvents:
    def test_sorts_by_time(self):
        out = validate_events([Event(0, 1, 5.0), Event(1, 2, 1.0)])
        assert [ev.t for ev in out] == [1.0, 5.0]

    def test_tie_break_by_nodes(self):
        out = validate_events([Event(2, 3, 1.0), Event(0, 1, 1.0)])
        assert out[0] == Event(0, 1, 1.0)

    def test_accepts_plain_tuples(self):
        out = validate_events([(0, 1, 3.0)])
        assert out == [Event(0, 1, 3.0)]

    def test_rejects_negative_timestamps(self):
        with pytest.raises(ValueError, match="negative"):
            validate_events([Event(0, 1, -1.0)])

    def test_rejects_self_loops_by_default(self):
        with pytest.raises(ValueError, match="self-loop"):
            validate_events([Event(1, 1, 0.0)])

    def test_allows_loops_when_asked(self):
        out = validate_events([Event(1, 1, 0.0)], allow_loops=True)
        assert out[0].is_loop()

    def test_empty_ok(self):
        assert validate_events([]) == []


class TestIntereventTimes:
    def test_gaps(self):
        events = [Event(0, 1, 0.0), Event(0, 1, 3.0), Event(0, 1, 10.0)]
        assert interevent_times(events) == [3.0, 7.0]

    def test_single_event_no_gaps(self):
        assert interevent_times([Event(0, 1, 0.0)]) == []

    def test_empty(self):
        assert interevent_times([]) == []
